//! End-to-end tracing tests: a traced command's journey across the wire.
//!
//! The contract under test is the tentpole of the tracing subsystem: a
//! client-stamped trace context rides the wire into the daemon, the worker
//! records named phase spans (`queue_wait`, `journal_append`, `solve`,
//! `reply_write`) into one span tree, the reply carries the trace id back,
//! and the finished trace is retrievable from the slow-trace ring with its
//! spans nested inside the end-to-end duration.  Crash-recovery replay is
//! tested with the real `kill -9` harness: replayed commands must surface
//! as *fresh* traces marked `replay=true` — never re-attributed to the
//! trace ids the original wire commands carried.

use oef_cluster::ClusterTopology;
use oef_service::{Command, Response, Server, ServiceClient, ServiceConfig};
use oef_shard::{placement_from_name, JournalOptions, Journaled, ShardCoordinator};
use oef_trace::{TraceRing, Tracer};
use std::io::BufRead;
use std::path::PathBuf;

fn coordinator(shards: usize) -> ShardCoordinator {
    ShardCoordinator::new(
        (0..shards)
            .map(|_| ClusterTopology::paper_cluster())
            .collect(),
        ServiceConfig::default(),
        placement_from_name("least-loaded").unwrap(),
    )
    .unwrap()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oef-trace-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const PROFILES: [&[f64]; 4] = [
    &[1.0, 1.18, 1.39],
    &[1.0, 1.55, 2.15],
    &[1.0, 1.25, 1.55],
    &[1.0, 1.40, 1.90],
];

/// A traced client: every request carries a sampled context (1-in-1).
fn traced_client(addr: &str) -> ServiceClient {
    let mut client = ServiceClient::connect(addr).unwrap();
    client.set_tracer(Some(Tracer::new(1)));
    client
}

/// The tentpole path at 4 shards: a traced command crosses the wire into a
/// journaled federation, the reply carries the trace id, and the ring holds
/// the complete span tree with every phase nested inside the total.
#[test]
fn traced_tick_returns_trace_id_and_nested_spans() {
    let dir = fresh_dir("spans");
    let journaled = Journaled::create(
        coordinator(4),
        &dir,
        JournalOptions {
            fsync_every: 1,
            compact_every: 10_000,
            segment_records: 1024,
        },
    )
    .unwrap();
    let ring = TraceRing::new(16, 256);
    let tracer = Tracer::with_ring(1, ring.clone());
    let server = Server::spawn_traced(journaled, "127.0.0.1:0", Some(tracer)).unwrap();
    let addr = server.local_addr().to_string();

    let mut client = traced_client(&addr);
    let mut tick_ids = Vec::new();
    for (i, profile) in PROFILES.iter().enumerate() {
        let tenant = client.join(&format!("traced-{i}"), 1, profile).unwrap();
        client.submit_job(tenant, "model", 2, 1e9).unwrap();
    }
    for _ in 0..3 {
        client.tick().unwrap();
        let id = client
            .last_trace_id()
            .expect("a 1-in-1 sampled tick must return a trace id")
            .to_string();
        assert!(
            oef_trace::parse_id(&id).is_some(),
            "reply trace id {id:?} is not 16 hex digits"
        );
        tick_ids.push(id);
    }

    // Every reply id resolves to a complete span tree in the ring.  The
    // daemon records the trace *after* flushing the reply (the record's
    // reply_write span times that flush), so the newest record can trail
    // the reply by a scheduling quantum — poll briefly.
    let find = |id: &str| {
        let key = oef_trace::parse_id(id).unwrap();
        for _ in 0..200 {
            if let Some(record) = ring.find(key) {
                return record;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("trace {id} not retrievable from the ring");
    };
    for id in &tick_ids {
        let record = find(id);
        assert_eq!(record.root, "Tick");
        assert!(!record.replay, "a live wire command is not a replay");
        let named: Vec<&str> = record.spans.iter().map(|s| s.name).collect();
        for phase in ["queue_wait", "journal_append", "solve", "reply_write"] {
            assert!(
                named.contains(&phase),
                "tick trace {id} is missing the {phase} span (has {named:?})"
            );
        }
        // Nesting: each phase starts and ends inside the end-to-end window,
        // and the sequential phases cannot exceed it in sum.
        for span in &record.spans {
            assert!(
                span.start_ns + span.dur_ns <= record.total_ns,
                "span {} ({}ns at {}ns) escapes the {}ns total of trace {id}",
                span.name,
                span.dur_ns,
                span.start_ns,
                record.total_ns
            );
        }
        assert!(record.child_ns("queue_wait") <= record.total_ns);
        assert!(
            record.child_ns("journal_append") + record.child_ns("solve") <= record.total_ns,
            "journal + solve exceed the end-to-end duration of trace {id}: {:?} total={}",
            record.spans,
            record.total_ns
        );
        // Group commit at fsync_every=1 syncs inside every append, so each
        // sync span nests under a journal_append parent and fits within it.
        for span in &record.spans {
            if span.name == "journal_sync" {
                let parent = span
                    .parent
                    .expect("journal_sync nests under journal_append");
                let parent = &record.spans[parent as usize];
                assert_eq!(parent.name, "journal_append");
                assert!(span.dur_ns <= parent.dur_ns);
            }
        }
    }

    // The ring sampled every command: joins, submits, ticks.
    assert!(ring.pushed() >= (2 * PROFILES.len() + 3) as u64);
    client.shutdown().unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An untraced daemon still echoes the client's trace id back in the reply,
/// so a sampling client can correlate even when the server records nothing.
#[test]
fn untraced_daemon_echoes_client_trace_id() {
    let server = Server::spawn(coordinator(2), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let mut client = traced_client(&addr);
    client.join("echo-0", 1, PROFILES[0]).unwrap();
    let id = client
        .last_trace_id()
        .expect("the daemon must echo the client's sampled trace id")
        .to_string();
    assert!(oef_trace::parse_id(&id).is_some());
    client.shutdown().unwrap();
    server.join();
}

/// Spawns the real daemon binary and returns (child, wire addr, metrics
/// addr) once both listeners have announced themselves on stdout.
fn spawn_serviced(args: &[&str]) -> (std::process::Child, String, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_oef-serviced"))
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn oef-serviced");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut addr = None;
    let mut maddr = None;
    while addr.is_none() || maddr.is_none() {
        let line = lines
            .next()
            .expect("daemon exited before listening")
            .expect("daemon stdout");
        if let Some(a) = line.strip_prefix("oef-serviced listening on ") {
            addr = Some(a.to_string());
        } else if let Some(a) = line.strip_prefix("oef-serviced metrics listening on ") {
            maddr = Some(a.to_string());
        }
    }
    std::thread::spawn(move || for _ in lines {});
    (child, addr.unwrap(), maddr.unwrap())
}

/// One HTTP/1.1 GET against the metrics listener.
fn http_get(addr: &str, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("metrics port accepts");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "GET {path} failed: {head}"
    );
    body.to_string()
}

/// Kill -9 a traced, journaled daemon mid-run and recover it: the replayed
/// commands must show up in `/traces` as fresh `replay=true` traces whose
/// ids are disjoint from the ids the original wire commands returned.
#[test]
fn replay_traces_are_fresh_and_marked_after_kill_nine() {
    let dir = fresh_dir("kill9");
    let dir_arg = dir.to_str().unwrap().to_string();
    let flags = [
        "--addr",
        "127.0.0.1:0",
        "--metrics-addr",
        "127.0.0.1:0",
        "--trace-sample",
        "1",
        "--journal-dir",
        &dir_arg,
        "--fsync-every",
        "1",
        "--compact-every",
        "100000",
    ];
    let (mut child, addr, _maddr) = spawn_serviced(&{
        let mut f = flags.to_vec();
        f.extend_from_slice(&["--shards", "2"]);
        f
    });

    let mut client = traced_client(&addr);
    let mut live_ids = Vec::new();
    for (i, profile) in PROFILES.iter().enumerate() {
        let tenant = client.join(&format!("crash-{i}"), 1, profile).unwrap();
        live_ids.push(client.last_trace_id().unwrap().to_string());
        client.submit_job(tenant, "model", 2, 1e9).unwrap();
        live_ids.push(client.last_trace_id().unwrap().to_string());
    }
    client.tick().unwrap();
    live_ids.push(client.last_trace_id().unwrap().to_string());

    // SIGKILL: no drop handlers, no exit checkpoint — recovery must replay.
    child.kill().expect("kill -9 the daemon");
    let _ = child.wait();

    let (mut child, addr, maddr) = spawn_serviced(&flags);
    let traces = http_get(&maddr, "/traces");
    let doc: serde::Value = serde_json::from_str(&traces).expect("/traces is valid JSON");
    let recent = doc
        .get("recent")
        .and_then(serde::Value::as_array)
        .expect("/traces has a recent list");
    let slowest = doc
        .get("slowest")
        .and_then(serde::Value::as_array)
        .expect("/traces has a slowest list");
    let replays: Vec<&serde::Value> = recent
        .iter()
        .chain(slowest.iter())
        .filter(|r| matches!(r.get("replay"), Some(serde::Value::Bool(true))))
        .collect();
    // Every journaled command (4 joins + 4 submits + 1 tick) replays as a
    // trace; the bounded `recent` window may not retain all of them, but
    // some must be visible and every one must carry a fresh id.
    assert!(
        !replays.is_empty(),
        "recovery replayed no traced commands: {traces}"
    );
    for record in &replays {
        let id = record
            .get("trace_id")
            .and_then(serde::Value::as_str)
            .expect("replay trace has an id");
        assert!(
            !live_ids.iter().any(|live| live == id),
            "replay trace {id} was re-attributed to a live wire trace"
        );
    }

    // The recovered daemon keeps tracing live commands.
    let mut client = traced_client(&addr);
    match client.call(Command::Tick) {
        Ok(Response::RoundCompleted(_)) => {}
        other => panic!("post-recovery tick failed: {other:?}"),
    }
    let post = client.last_trace_id().expect("post-recovery tick traced");
    assert!(oef_trace::parse_id(post).is_some());

    client.shutdown().unwrap();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
