//! Property tests for handle forwarding under arbitrary migration sequences.
//!
//! The forwarding table is what lets every handle a client ever held keep
//! working across any number of tenant moves, so its invariants are the
//! load-bearing ones of the whole migration design:
//!
//! * **No cycles, ever** — resolution terminates, because a forwarding edge
//!   always points at a freshly minted handle and handle maps never re-issue
//!   one.
//! * **Every alias resolves to the live handle** — after an arbitrary
//!   interleaving of migrations, *every* handle ever issued for a tenant
//!   routes a real command to that tenant (verified through the actual wire
//!   dispatch, not just table lookups).
//! * **Chains compress** — after a lookup the walked chain is depth 1, so
//!   long-lived clients never pay more than one extra hop.

use oef_core::sharded;
use oef_service::{Command, Response, ServiceConfig};
use oef_shard::{placement_from_name, ShardCoordinator};
use proptest::prelude::*;

fn coordinator(shards: usize) -> ShardCoordinator {
    ShardCoordinator::new(
        (0..shards)
            .map(|_| oef_cluster::ClusterTopology::paper_cluster())
            .collect(),
        ServiceConfig::default(),
        placement_from_name("least-loaded").unwrap(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_migrations_never_cycle_and_every_alias_resolves(
        shards in 2usize..5,
        tenants in 1usize..6,
        moves in proptest::collection::vec((0u16..=999, 0u16..=999), 1..40),
    ) {
        let mut c = coordinator(shards);
        // aliases[t] is every wire handle ever issued for tenant t, oldest
        // first; live[t] is the current one.
        let mut aliases: Vec<Vec<u64>> = Vec::new();
        let mut live: Vec<u64> = Vec::new();
        for t in 0..tenants {
            let Response::TenantJoined { tenant } = c.apply(
                Command::TenantJoin {
                    name: format!("t{t}"),
                    weight: 1,
                    speedup: vec![1.0, 1.2, 1.4],
                },
                0,
            ) else {
                panic!("join failed");
            };
            aliases.push(vec![tenant]);
            live.push(tenant);
        }

        for (pick_tenant, pick_shard) in moves {
            let t = usize::from(pick_tenant) % tenants;
            let target = usize::from(pick_shard) % shards;
            // Drive the migration through an arbitrary historical alias —
            // clients do not know (or care) how often a tenant has moved.
            let alias = aliases[t][usize::from(pick_shard) % aliases[t].len()];
            let response = c.apply(
                Command::MigrateTenant { tenant: alias, shard: target },
                0,
            );
            match response {
                Response::TenantMigrated { tenant, previous, to, .. } => {
                    prop_assert_eq!(previous, live[t], "the live handle is what retires");
                    prop_assert_eq!(to, target);
                    prop_assert_eq!(sharded::shard_of(tenant), target);
                    prop_assert!(
                        !aliases.iter().any(|a| a.contains(&tenant)),
                        "re-minted handle must be globally fresh"
                    );
                    aliases[t].push(tenant);
                    live[t] = tenant;
                }
                Response::Error { .. } => {
                    // Self-move (tenant already on `target`): a no-op by design.
                    prop_assert_eq!(sharded::shard_of(live[t]), target);
                }
                other => panic!("unexpected migrate response: {other:?}"),
            }

            // Invariant: resolution terminates (no cycle) and lands on the
            // live handle, for every alias ever issued.
            for (t, tenant_aliases) in aliases.iter().enumerate() {
                for &alias in tenant_aliases {
                    prop_assert_eq!(
                        c.resolve_handle(alias),
                        live[t],
                        "alias {} of tenant {} resolves to its live handle",
                        sharded::format(alias),
                        t
                    );
                }
            }
            // Invariant: the lookups above compressed every chain.
            prop_assert!(c.forwarding_depth() <= 1, "depth {}", c.forwarding_depth());
        }

        // End-to-end: every alias still routes a real command to its tenant.
        for (t, tenant_aliases) in aliases.iter().enumerate() {
            for &alias in tenant_aliases {
                let response = c.apply(
                    Command::UpdateSpeedups {
                        tenant: alias,
                        speedup: vec![1.0, 1.3, 1.6],
                    },
                    0,
                );
                prop_assert!(
                    matches!(response, Response::SpeedupsUpdated { tenant } if tenant == live[t]),
                    "alias {} of tenant {t} must route: {response:?}",
                    sharded::format(alias)
                );
            }
        }

        // A leave through the oldest alias retires the tenant's whole chain.
        let oldest = aliases[0][0];
        let response = c.apply(Command::TenantLeave { tenant: oldest }, 0);
        prop_assert!(matches!(response, Response::TenantLeft { .. }), "{response:?}");
        for &alias in &aliases[0] {
            let response = c.apply(
                Command::UpdateSpeedups { tenant: alias, speedup: vec![1.0, 1.3, 1.6] },
                0,
            );
            prop_assert!(
                matches!(
                    response,
                    Response::Error { code: oef_service::ErrorCode::UnknownTenant, .. }
                ),
                "departed alias must be dead: {response:?}"
            );
        }
    }
}
