//! # oef-shard — sharded cluster federation for the scheduling middleware
//!
//! One `SchedulerService` re-solves a fair-share LP whose cost grows
//! superlinearly with the tenant count.  This crate scales the middleware
//! *out* instead of up: a [`ShardCoordinator`] owns N independent scheduler
//! shards — each with its own cluster state, policy and warm-started solver
//! context — and speaks the existing v2 wire protocol unchanged on the
//! front, so clients cannot tell a federation from a single daemon.
//!
//! * **Shard-aware handles** — every handle a shard mints is tagged with the
//!   shard index in its top 8 bits ([`oef_core::sharded`]); routing decodes
//!   those bits, so the coordinator needs no lookup tables.  Shard 0 is the
//!   identity encoding: existing handles, snapshots and clients stay valid.
//! * **Parallel solves** — `Tick` fans out over `std::thread::scope`, so the
//!   federation's round latency is the slowest shard, not the sum, and each
//!   shard's tenant count stays in the warm-start sweet spot.
//! * **Pluggable placement** — [`ShardPlacement`] decides where tenants and
//!   hosts without a handle land ([`LeastLoaded`], [`RoundRobin`]).
//! * **Live migration + rebalancing** — `MigrateTenant` moves a tenant's
//!   complete state (profile, jobs, rounding deviations) to another shard
//!   via [`oef_rebalance::TenantMigrator`], re-minting its handle there; a
//!   persistent **forwarding table** (old handle → live handle, compressed
//!   on lookup) keeps every handle a client ever held working across any
//!   number of moves.  `Rebalance` runs the online
//!   [`oef_rebalance::Rebalancer`] over per-shard load and executes the plan.
//! * **Federated snapshots** — v5 envelopes carry one v2 snapshot per shard
//!   plus the router's own state: placement cursor, forwarding table,
//!   rebalancer config, journal epoch ([`FederatedSnapshot`]).
//!   [`wrap_v2_snapshot`] migrates an unsharded snapshot into a single-shard
//!   federation; [`upgrade_v3_snapshot`] / [`upgrade_v4_snapshot`] lift
//!   PR-4- and PR-5-era envelopes to v5.
//! * **Write-ahead journal + crash recovery** — [`Journaled`] wraps the
//!   coordinator with an `oef-journal` command log: mutating commands are
//!   appended (group-committed per [`JournalOptions`]) before they apply,
//!   checkpoints atomically rewrite `snapshot.json` and compact the log, and
//!   [`Journaled::recover`] restores snapshot + deterministic tail replay
//!   after a crash — torn tails are detected by checksum and cleanly
//!   truncated.  Scripted [`oef_journal::CrashPoint`]s drive the
//!   fault-injection e2e suite.
//!
//! The `oef-serviced` / `oef-servicectl` binaries are built from this crate
//! (the daemon serves either one `SchedulerService` or a coordinator,
//! depending on `--shards`).
//!
//! ```
//! use oef_cluster::ClusterTopology;
//! use oef_service::{Server, ServiceClient, ServiceConfig};
//! use oef_shard::{placement_from_name, ShardCoordinator};
//!
//! let coordinator = ShardCoordinator::new(
//!     vec![ClusterTopology::paper_cluster(), ClusterTopology::paper_cluster()],
//!     ServiceConfig::default(),
//!     placement_from_name("least-loaded").unwrap(),
//! )
//! .unwrap();
//! let server = Server::spawn(coordinator, "127.0.0.1:0").unwrap();
//!
//! // Same protocol, same client — the federation is transparent.
//! let mut client = ServiceClient::connect(server.local_addr()).unwrap();
//! let alice = client.join("alice", 1, &[1.0, 1.2, 1.4]).unwrap();
//! let bob = client.join("bob", 1, &[1.0, 1.6, 2.2]).unwrap();
//! assert_ne!(oef_core::sharded::shard_of(alice), oef_core::sharded::shard_of(bob));
//! client.shutdown().unwrap();
//! server.join();
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod journaled;
mod placement;
mod snapshot;

pub use coordinator::ShardCoordinator;
pub use journaled::{Crashed, JournalOptions, Journaled, RecoverySummary};
pub use placement::{placement_from_name, LeastLoaded, RoundRobin, ShardLoad, ShardPlacement};
pub use snapshot::{
    upgrade_v3_snapshot, upgrade_v4_snapshot, wrap_v2_snapshot, FederatedSnapshot, ForwardingEntry,
    MigrateError, PlacementState, FEDERATED_SNAPSHOT_VERSION,
};
