//! Operator client for `oef-serviced`.
//!
//! ```text
//! oef-servicectl status   <addr>          # print a status line (per shard when sharded)
//! oef-servicectl status --shards <addr>   # per-shard load + forwarding-table view
//! oef-servicectl metrics  <addr>          # print the metrics registry as JSON
//! oef-servicectl check-metrics <addr>     # validate a /metrics exposition endpoint (CI)
//! oef-servicectl trace <addr>             # print the slowest sampled traces (metrics port)
//! oef-servicectl trace <addr> --slowest N # top-N slowest traces
//! oef-servicectl trace <addr> --id X      # one trace by hex id
//! oef-servicectl attrib <addr>            # per-tenant solve-cost explainer (metrics port)
//! oef-servicectl attrib <addr> --top K    # limit the tenant table to the top K
//! oef-servicectl attrib <addr> --tenant H # one tenant's full cost breakdown
//! oef-servicectl tick     <addr>          # run one scheduling round
//! oef-servicectl migrate <addr> <tenant> <shard>  # move a tenant to another shard
//! oef-servicectl rebalance <addr>         # run one rebalancing pass, print the plan
//! oef-servicectl snapshot <addr> <file>   # save a state snapshot
//! oef-servicectl shutdown <addr>          # stop the daemon
//! oef-servicectl smoke    <addr>          # scripted join/tick/leave session (CI)
//! oef-servicectl smoke-shard <addr>       # scripted cross-shard session (CI, --shards daemon)
//! oef-servicectl smoke-crash-prepare <addr> <file>  # build state, record it (CI crash test)
//! oef-servicectl smoke-crash-verify  <addr> <file>  # check a recovered daemon against the record
//! oef-servicectl migrate-snapshot <in> <out>  # wrap v2 / upgrade v3 or v4 into a v5 envelope
//! ```
//!
//! `smoke` drives a short but complete session — two tenants join, submit
//! jobs, three rounds run, allocations are sanity-checked, one tenant leaves,
//! the daemon shuts down — and exits non-zero on any deviation.  CI uses it
//! to prove a freshly built daemon serves the full protocol on a loopback
//! port and terminates cleanly.  `smoke-shard` is its federation sibling: it
//! requires a daemon started with `--shards ≥ 2`, spreads tenants across
//! shards, asserts that `Status` aggregates exactly the per-shard entries,
//! migrates a tenant over the wire and re-verifies its old handle across a
//! snapshot/restore.
//!
//! `check-metrics` targets the daemon's *metrics* listener (the
//! `--metrics-addr` port, not the command port): it fetches `/healthz` and
//! `/metrics` over raw HTTP, runs the strict in-repo exposition parser over
//! the body, and asserts the core series families are present — command
//! counters, queue depth, uptime, the per-shard solve-latency histogram
//! (with a cumulative `+Inf` bucket) and the per-tenant fairness-SLO
//! families.  CI uses it as a promtool stand-in.
//!
//! `migrate <tenant>` accepts either the raw decimal handle or the
//! `shard:slot@generation` form that `status` prints, so handles can be
//! copied straight between the two commands.
//!
//! `smoke-crash-prepare` / `smoke-crash-verify` bracket the CI crash-
//! recovery test: prepare drives a journaled daemon to a known state (two
//! tenants, jobs, three rounds) and records handles, job ids and the last
//! round's allocations in `<file>`; CI then `kill -9`s the daemon, restarts
//! it from its `--journal-dir`, and verify checks the recovered daemon over
//! the wire — same round and tenant count, a fresh tick reproducing the
//! recorded `gpu_shares` and `estimated_throughput` to 1e-6, and every
//! pre-crash handle and job id still resolving.
//!
//! `migrate-snapshot` is offline (no daemon involved): it validates a v2
//! snapshot file and wraps it into a single-shard federated (v5) envelope —
//! or, given a v3/v4 envelope from a PR-4/PR-5-era federation, upgrades it
//! in place (journal epoch zero; v3 also gets an empty forwarding table and
//! default rebalancer) — that `oef-serviced --restore` will serve as a
//! coordinator.  Snapshot files are written atomically (temp file + fsync +
//! rename), so a crash mid-write never leaves a torn snapshot behind.
//!
//! Handles render as `shard:slot@generation` (e.g. `0:3@1`) — the unsharded
//! daemon is shard 0.

use oef_core::sharded;
use oef_service::{ClientResult, ServiceClient};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, addr] if cmd == "status" => status(addr),
        [cmd, flag, addr] if cmd == "status" && flag == "--shards" => status_shards(addr),
        [cmd, addr] if cmd == "metrics" => metrics(addr),
        [cmd, addr] if cmd == "check-metrics" => check_metrics(addr),
        [cmd, addr] if cmd == "trace" => trace(addr, 5, None),
        [cmd, addr, flag, n] if cmd == "trace" && flag == "--slowest" => match n.parse::<usize>() {
            Ok(n) => trace(addr, n, None),
            Err(e) => {
                eprintln!("oef-servicectl: bad --slowest: {e}");
                std::process::exit(2);
            }
        },
        [cmd, addr, flag, id] if cmd == "trace" && flag == "--id" => trace(addr, 0, Some(id)),
        [cmd, addr] if cmd == "attrib" => attrib(addr, 10, None),
        [cmd, addr, flag, k] if cmd == "attrib" && flag == "--top" => match k.parse::<usize>() {
            Ok(k) => attrib(addr, k, None),
            Err(e) => {
                eprintln!("oef-servicectl: bad --top: {e}");
                std::process::exit(2);
            }
        },
        [cmd, addr, flag, h] if cmd == "attrib" && flag == "--tenant" => match sharded::parse(h) {
            Some(handle) => attrib(addr, 0, Some(handle)),
            None => {
                eprintln!(
                    "oef-servicectl: `{h}` is not a handle (use the decimal value or the \
                         shard:slot@gen form that `status` prints)"
                );
                std::process::exit(2);
            }
        },
        [cmd, addr] if cmd == "tick" => tick(addr),
        [cmd, addr, tenant, shard] if cmd == "migrate" => migrate(addr, tenant, shard),
        [cmd, addr] if cmd == "rebalance" => rebalance(addr),
        [cmd, addr, file] if cmd == "snapshot" => snapshot(addr, file),
        [cmd, addr] if cmd == "shutdown" => shutdown(addr),
        [cmd, addr] if cmd == "smoke" => smoke(addr),
        [cmd, addr] if cmd == "smoke-shard" => smoke_shard(addr),
        [cmd, addr, file] if cmd == "smoke-crash-prepare" => smoke_crash_prepare(addr, file),
        [cmd, addr, file] if cmd == "smoke-crash-verify" => smoke_crash_verify(addr, file),
        [cmd, input, output] if cmd == "migrate-snapshot" => migrate_snapshot(input, output),
        _ => {
            eprintln!(
                "usage: oef-servicectl <status|metrics|tick|rebalance|shutdown|smoke|smoke-shard> \
                 <addr>\n\
                 \x20      oef-servicectl status --shards <addr>\n\
                 \x20      oef-servicectl check-metrics <metrics-addr>\n\
                 \x20      oef-servicectl trace <metrics-addr> [--slowest N | --id HEX]\n\
                 \x20      oef-servicectl attrib <metrics-addr> [--top K | --tenant H]\n\
                 \x20      oef-servicectl migrate <addr> <tenant-handle> <shard>\n\
                 \x20      oef-servicectl snapshot <addr> <file>\n\
                 \x20      oef-servicectl smoke-crash-prepare <addr> <file>\n\
                 \x20      oef-servicectl smoke-crash-verify <addr> <file>\n\
                 \x20      oef-servicectl migrate-snapshot <v2-v3-or-v4-file> <v5-file>"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("oef-servicectl: {e}");
        std::process::exit(1);
    }
}

fn status(addr: &str) -> ClientResult<()> {
    let report = ServiceClient::connect(addr)?.status()?;
    println!(
        "policy={} protocol=v{} uptime={:.1}s round={} time={}s tenants={} jobs={} hosts={} \
         devices={} forwarding={}",
        report.policy,
        report.protocol,
        report.uptime_secs,
        report.round,
        report.time_secs,
        report.tenants,
        report.jobs,
        report.hosts,
        report.total_devices,
        report.forwarding_entries,
    );
    for shard in &report.shards {
        println!(
            "  shard {} round={} tenants={} jobs={} hosts={} devices={}",
            shard.shard, shard.round, shard.tenants, shard.jobs, shard.hosts, shard.total_devices
        );
    }
    for host in &report.topology {
        println!(
            "  host {} gpu_type={} gpus={}",
            sharded::format(host.host),
            host.gpu_type,
            host.num_gpus
        );
    }
    Ok(())
}

/// The per-shard load view: what the rebalancer sees, plus the forwarding
/// table's health.
fn status_shards(addr: &str) -> ClientResult<()> {
    let report = ServiceClient::connect(addr)?.status()?;
    if report.shards.is_empty() {
        println!("daemon is unsharded (single scheduler, shard 0)");
        return Ok(());
    }
    println!(
        "{} shard(s), round {}, forwarding table: {} entr{} (depth {})",
        report.shards.len(),
        report.round,
        report.forwarding_entries,
        if report.forwarding_entries == 1 {
            "y"
        } else {
            "ies"
        },
        report.forwarding_depth,
    );
    for shard in &report.shards {
        println!(
            "  shard {}: tenants={} jobs={} hosts={} devices={} solve_ewma={:.6}s",
            shard.shard,
            shard.tenants,
            shard.jobs,
            shard.hosts,
            shard.total_devices,
            shard.solve_ewma_secs,
        );
    }
    Ok(())
}

fn migrate(addr: &str, tenant: &str, shard: &str) -> ClientResult<()> {
    let handle = sharded::parse(tenant).ok_or_else(|| {
        oef_service::ClientError::Protocol(format!(
            "`{tenant}` is not a handle (use the decimal value or the shard:slot@gen form \
             that `status` prints)"
        ))
    })?;
    let target: usize = shard
        .parse()
        .map_err(|e| oef_service::ClientError::Protocol(format!("bad shard index: {e}")))?;
    let fresh = ServiceClient::connect(addr)?.migrate_tenant(handle, target)?;
    println!(
        "tenant {} migrated to shard {target}; new handle {} ({}) — the old handle keeps \
         working via forwarding",
        sharded::format(handle),
        fresh,
        sharded::format(fresh),
    );
    Ok(())
}

fn rebalance(addr: &str) -> ClientResult<()> {
    let report = ServiceClient::connect(addr)?.rebalance()?;
    println!(
        "policy={} imbalance {:.2} -> {:.2} (threshold {:.2}), {} move(s)",
        report.policy,
        report.imbalance_before,
        report.imbalance_after,
        report.threshold,
        report.moves.len(),
    );
    for m in &report.moves {
        println!(
            "  moved {} from shard {} to shard {} (now {})",
            sharded::format(m.previous),
            m.from,
            m.to,
            sharded::format(m.tenant),
        );
    }
    Ok(())
}

fn metrics(addr: &str) -> ClientResult<()> {
    let report = ServiceClient::connect(addr)?.metrics()?;
    match serde_json::to_string(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => println!("metrics serialization failed: {e}"),
    }
    Ok(())
}

/// One raw HTTP/1.1 GET against the daemon's metrics listener.  Returns the
/// status code, the header block and the body.  Deliberately primitive — the
/// responder always answers `Connection: close`, so read-to-EOF is the
/// complete framing story.
fn http_get(addr: &str, path: &str) -> ClientResult<(u16, String, String)> {
    use std::io::{Read, Write};
    let protocol = |message: String| oef_service::ClientError::Protocol(message);
    let mut stream = std::net::TcpStream::connect(addr).map_err(oef_service::ClientError::Io)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(oef_service::ClientError::Io)?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(oef_service::ClientError::Io)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| protocol(format!("GET {path}: no header/body separator in response")))?;
    let status_line = head.lines().next().unwrap_or("");
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| protocol(format!("GET {path}: bad status line `{status_line}`")))?;
    Ok((code, head.to_string(), body.to_string()))
}

/// Reads `GET /traces` off the metrics listener and prints sampled span
/// trees: the top `slowest` traces, or one trace picked by hex id.
fn trace(addr: &str, slowest: usize, id: Option<&str>) -> ClientResult<()> {
    let protocol = |message: String| oef_service::ClientError::Protocol(message);
    let (code, _, body) = http_get(addr, "/traces")?;
    if code == 404 {
        return Err(protocol(
            "daemon is not tracing; start it with --trace-sample N (and --metrics-addr)"
                .to_string(),
        ));
    }
    check("/traces answers 200", code == 200)?;
    let value: serde::Value = serde_json::from_str(body.trim())
        .map_err(|e| protocol(format!("/traces body is not JSON: {e}")))?;
    let pushed = value
        .get("pushed")
        .and_then(serde::Value::as_u64)
        .unwrap_or(0);
    let records = |key: &str| -> &[serde::Value] {
        value
            .get(key)
            .and_then(serde::Value::as_array)
            .unwrap_or(&[])
    };
    match id {
        Some(id) => {
            let record = records("slowest")
                .iter()
                .chain(records("recent"))
                .find(|r| r.get("trace_id").and_then(serde::Value::as_str) == Some(id))
                .ok_or_else(|| {
                    protocol(format!(
                        "trace {id} is not in the ring (it keeps the top-K slowest plus a \
                         bounded tail of recent samples)"
                    ))
                })?;
            print_trace(record);
        }
        None => {
            println!("{pushed} sampled trace(s) recorded since start");
            for record in records("slowest").iter().take(slowest) {
                print_trace(record);
            }
        }
    }
    Ok(())
}

/// Renders one `/traces` record as an indented span tree.
fn print_trace(record: &serde::Value) {
    let str_of = |key: &str| {
        record
            .get(key)
            .and_then(serde::Value::as_str)
            .unwrap_or("?")
    };
    let num_of = |v: &serde::Value, key: &str| v.get(key).and_then(serde::Value::as_f64);
    let replay = matches!(record.get("replay"), Some(serde::Value::Bool(true)));
    println!(
        "trace {} root={} total={:.1}us{}",
        str_of("trace_id"),
        str_of("root"),
        num_of(record, "total_us").unwrap_or(0.0),
        if replay { " replay=true" } else { "" },
    );
    let spans = record
        .get("spans")
        .and_then(serde::Value::as_array)
        .unwrap_or(&[]);
    // Spans carry a parent *index*; indent each by its ancestor depth.
    for (i, span) in spans.iter().enumerate() {
        let mut depth = 1;
        let mut at = i;
        while let Some(parent) = spans
            .get(at)
            .and_then(|s| s.get("parent"))
            .and_then(serde::Value::as_u64)
        {
            depth += 1;
            at = parent as usize;
            if depth > spans.len() {
                break;
            }
        }
        println!(
            "{:indent$}{} start={:.1}us dur={:.1}us",
            "",
            span.get("name")
                .and_then(serde::Value::as_str)
                .unwrap_or("?"),
            num_of(span, "start_us").unwrap_or(0.0),
            num_of(span, "dur_us").unwrap_or(0.0),
            indent = depth * 2,
        );
    }
    if let Some(counts) = record.get("counts").and_then(serde::Value::as_object) {
        for (name, n) in counts {
            println!("  count {name}={}", n.as_u64().unwrap_or(0));
        }
    }
}

/// The cost explainer: reads `GET /attrib` off the metrics listener and
/// renders the per-tenant solve-cost table (or one tenant's breakdown),
/// the daemon's always-on phase profile, and — when the daemon also
/// traces — the slowest recorded rounds with their solver share, so
/// "which rounds were slow" and "who made them expensive" answer from
/// one command.
fn attrib(addr: &str, top: usize, tenant: Option<u64>) -> ClientResult<()> {
    let protocol = |message: String| oef_service::ClientError::Protocol(message);
    let (code, _, body) = http_get(addr, "/attrib")?;
    if code == 404 {
        return Err(protocol(
            "daemon exposes no /attrib endpoint; start it with --metrics-addr (attribution \
             requires a metrics listener)"
                .to_string(),
        ));
    }
    check("/attrib answers 200", code == 200)?;
    let value: serde::Value = serde_json::from_str(body.trim())
        .map_err(|e| protocol(format!("/attrib body is not JSON: {e}")))?;
    let num = |v: &serde::Value, key: &str| v.get(key).and_then(serde::Value::as_u64).unwrap_or(0);
    let solves = num(&value, "solves");
    let total = num(&value, "total_work_units");
    let tenants = value
        .get("tenants")
        .and_then(serde::Value::as_array)
        .unwrap_or(&[]);
    let share = |units: u64| {
        if total == 0 {
            0.0
        } else {
            100.0 * units as f64 / total as f64
        }
    };
    let print_work = |label: &str, v: &serde::Value| {
        println!(
            "  {label}: work_units={} ({:.1}%) pivots={} eta_nnz={} refactor={} ftran_nnz={} \
             btran_rows={}",
            num(v, "work_units"),
            share(num(v, "work_units")),
            num(v, "pivots"),
            num(v, "eta_nnz"),
            num(v, "refactorizations"),
            num(v, "ftran_nnz"),
            num(v, "btran_rows"),
        );
    };
    println!(
        "{solves} attributed solve(s), {total} total work units, {} live tenant(s)",
        tenants.len(),
    );
    match tenant {
        Some(handle) => {
            let record = tenants
                .iter()
                .find(|t| num(t, "tenant") == handle)
                .ok_or_else(|| {
                    protocol(format!(
                        "tenant {} ({}) holds no attributed work (never scheduled, or its \
                         history moved to the departed bucket when it left)",
                        handle,
                        sharded::format(handle),
                    ))
                })?;
            print_work(&format!("tenant {}", sharded::format(handle)), record);
        }
        None => {
            for record in tenants.iter().take(top) {
                let handle = num(record, "tenant");
                let exposed = matches!(record.get("exposed"), Some(serde::Value::Bool(true)));
                print_work(
                    &format!(
                        "tenant {}{}",
                        sharded::format(handle),
                        if exposed { "" } else { " (not exported)" },
                    ),
                    record,
                );
            }
            if tenants.len() > top {
                println!(
                    "  … {} more tenant(s); rerun with --top",
                    tenants.len() - top
                );
            }
            if let Some(departed) = value.get("departed") {
                if num(departed, "work_units") > 0 {
                    print_work("departed", departed);
                }
            }
            if let Some(unattributed) = value.get("unattributed") {
                if num(unattributed, "work_units") > 0 {
                    print_work("unattributed", unattributed);
                }
            }
        }
    }
    if let Some(phases) = value.get("profile").and_then(serde::Value::as_array) {
        if !phases.is_empty() {
            println!("phase profile (rolling window):");
            for phase in phases {
                println!(
                    "  {:<14} n={} mean={:.1}us max={:.1}us lifetime n={}",
                    phase
                        .get("phase")
                        .and_then(serde::Value::as_str)
                        .unwrap_or("?"),
                    num(phase, "window_count"),
                    num(phase, "window_mean_ns") as f64 / 1e3,
                    num(phase, "window_max_ns") as f64 / 1e3,
                    num(phase, "life_count"),
                );
            }
        }
    }
    // Join with the slow-trace ring: for each slow round, show how much of
    // it the solver accounts for.  Attribution is cumulative, so the tenant
    // table above names the likely contributors.
    if let Ok((code, _, body)) = http_get(addr, "/traces") {
        if code == 200 {
            if let Ok(traces) = serde_json::from_str::<serde::Value>(body.trim()) {
                let slowest = traces
                    .get("slowest")
                    .and_then(serde::Value::as_array)
                    .unwrap_or(&[]);
                let slow_rounds: Vec<&serde::Value> = slowest
                    .iter()
                    .filter(|r| {
                        r.get("spans")
                            .and_then(serde::Value::as_array)
                            .is_some_and(|spans| {
                                spans.iter().any(|s| {
                                    s.get("name").and_then(serde::Value::as_str) == Some("solve")
                                })
                            })
                    })
                    .take(5)
                    .collect();
                if !slow_rounds.is_empty() {
                    // Solve spans are summed across shards, which solve in
                    // parallel threads — a fanned-out round can legitimately
                    // show a solver share above 100% of its wall-clock.
                    println!("slowest traced rounds (summed per-shard solve time vs wall-clock):");
                    for record in slow_rounds {
                        let total_us = record
                            .get("total_us")
                            .and_then(serde::Value::as_f64)
                            .unwrap_or(0.0);
                        let solve_us: f64 = record
                            .get("spans")
                            .and_then(serde::Value::as_array)
                            .unwrap_or(&[])
                            .iter()
                            .filter(|s| {
                                s.get("name").and_then(serde::Value::as_str) == Some("solve")
                            })
                            .filter_map(|s| s.get("dur_us").and_then(serde::Value::as_f64))
                            .sum();
                        println!(
                            "  trace {} total={:.1}us solve={:.1}us ({:.0}%)  — inspect with \
                             `trace {addr} --id {}`",
                            record
                                .get("trace_id")
                                .and_then(serde::Value::as_str)
                                .unwrap_or("?"),
                            total_us,
                            solve_us,
                            if total_us > 0.0 {
                                100.0 * solve_us / total_us
                            } else {
                                0.0
                            },
                            record
                                .get("trace_id")
                                .and_then(serde::Value::as_str)
                                .unwrap_or("?"),
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

/// Validates the `--metrics-addr` endpoint like CI would with promtool:
/// health, content type, strict exposition grammar, and the presence of the
/// core series families.
fn check_metrics(addr: &str) -> ClientResult<()> {
    use oef_obs::MetricKind;
    let protocol = |message: String| oef_service::ClientError::Protocol(message);

    let (code, _, body) = http_get(addr, "/healthz")?;
    check("/healthz answers 200", code == 200)?;
    let health: serde::Value = serde_json::from_str(body.trim())
        .map_err(|e| protocol(format!("/healthz body is not JSON: {e}")))?;
    check(
        "/healthz reports status ok",
        health.get("status").and_then(serde::Value::as_str) == Some("ok"),
    )?;
    check(
        "/healthz reports uptime",
        health
            .get("uptime_secs")
            .and_then(serde::Value::as_f64)
            .is_some_and(|v| v >= 0.0),
    )?;
    check(
        "/healthz reports the shard count",
        health.get("shards").is_some() && health.get("journal_seq").is_some(),
    )?;

    let (code, head, body) = http_get(addr, "/metrics")?;
    check("/metrics answers 200", code == 200)?;
    check(
        "/metrics declares exposition format 0.0.4",
        head.to_ascii_lowercase().contains("text/plain") && head.contains("version=0.0.4"),
    )?;
    let exposition =
        oef_obs::parse(&body).map_err(|e| protocol(format!("invalid exposition: {e}")))?;
    check("exposition is non-empty", !exposition.families.is_empty())?;

    let family = |name: &str, kind: MetricKind| -> ClientResult<()> {
        let f = exposition
            .family(name)
            .ok_or_else(|| protocol(format!("check failed: family `{name}` is missing")))?;
        check(&format!("{name} is declared {kind:?}"), f.kind == kind)
    };
    family("oef_commands_processed_total", MetricKind::Counter)?;
    family("oef_commands_rejected_total", MetricKind::Counter)?;
    family("oef_queue_depth", MetricKind::Gauge)?;
    family("oef_uptime_seconds", MetricKind::Gauge)?;
    family("oef_solve_duration_seconds", MetricKind::Histogram)?;
    family("oef_warm_solves_total", MetricKind::Counter)?;
    family("oef_cold_solves_total", MetricKind::Counter)?;
    family("oef_basis_repairs_total", MetricKind::Counter)?;
    family("oef_churn_repairs_total", MetricKind::Counter)?;
    family("oef_refactorizations_total", MetricKind::Counter)?;
    family("oef_eta_pivots_total", MetricKind::Counter)?;
    family("oef_tenant_allocation", MetricKind::Gauge)?;
    family("oef_tenant_entitlement", MetricKind::Gauge)?;
    family("oef_max_envy", MetricKind::Gauge)?;
    family("oef_sharing_incentive", MetricKind::Gauge)?;
    family("oef_fairness_sample_age_seconds", MetricKind::Gauge)?;

    // The solve histogram must expose a complete per-shard series: a
    // cumulative +Inf bucket carrying the shard/policy/program labels, plus
    // _sum/_count.
    let solve = exposition
        .family("oef_solve_duration_seconds")
        .expect("presence checked above");
    check(
        "solve histogram has a per-shard +Inf bucket with policy/program labels",
        solve.samples.iter().any(|s| {
            s.name == "oef_solve_duration_seconds_bucket"
                && s.label("le") == Some("+Inf")
                && s.label("shard").is_some()
                && s.label("policy").is_some()
                && s.label("program").is_some()
        }),
    )?;
    check(
        "solve histogram has _sum and _count",
        solve
            .samples
            .iter()
            .any(|s| s.name == "oef_solve_duration_seconds_sum")
            && solve
                .samples
                .iter()
                .any(|s| s.name == "oef_solve_duration_seconds_count"),
    )?;
    check(
        "uptime advances",
        exposition
            .value("oef_uptime_seconds", &[])
            .is_some_and(|v| v >= 0.0),
    )?;
    // Exemplars (when the daemon traces) may only ride histogram `_bucket`
    // samples, must carry a trace_id label and a finite value.  The strict
    // parser already rejects exemplars elsewhere; assert the well-formedness
    // of the ones that made it through.
    let mut exemplars = 0usize;
    for family in &exposition.families {
        for sample in &family.samples {
            if let Some(exemplar) = &sample.exemplar {
                exemplars += 1;
                check(
                    &format!("exemplar on {} rides a histogram bucket", sample.name),
                    family.kind == MetricKind::Histogram && sample.name.ends_with("_bucket"),
                )?;
                check(
                    &format!("exemplar on {} carries a trace_id", sample.name),
                    exemplar.label("trace_id").is_some_and(|id| {
                        !id.is_empty() && id.chars().all(|c| c.is_ascii_hexdigit())
                    }),
                )?;
                check(
                    &format!("exemplar on {} has a finite value", sample.name),
                    exemplar.value.is_finite(),
                )?;
            }
        }
    }
    if exemplars > 0 {
        println!("ok: {exemplars} exemplar(s) validated");
    }
    println!(
        "ok: {} families, {} samples — exposition is valid",
        exposition.families.len(),
        exposition
            .families
            .iter()
            .map(|f| f.samples.len())
            .sum::<usize>(),
    );
    Ok(())
}

fn tick(addr: &str) -> ClientResult<()> {
    let round = ServiceClient::connect(addr)?.tick()?;
    println!(
        "round={} solver={:.6}s warm={} active_tenants={}",
        round.round,
        round.solver_time_secs,
        round.warm_start,
        round.tenants.len()
    );
    Ok(())
}

fn snapshot(addr: &str, file: &str) -> ClientResult<()> {
    let snapshot = ServiceClient::connect(addr)?.snapshot()?;
    // Atomic: an interrupted write must never leave a torn half-snapshot
    // where an operator expects a restorable file.
    oef_journal::atomic_write(std::path::Path::new(file), snapshot.as_bytes())
        .map_err(oef_service::ClientError::Io)?;
    println!("snapshot written to {file}");
    Ok(())
}

fn migrate_snapshot(input: &str, output: &str) -> ClientResult<()> {
    let source = std::fs::read_to_string(input).map_err(oef_service::ClientError::Io)?;
    // Dispatch on the input's version: v2 snapshots wrap into a single-shard
    // envelope, v3 and v4 envelopes upgrade in place.  Anything else (v1
    // included) flows through the v2 wrapper, whose validation produces the
    // same structured refusals the daemon would.
    let version = serde_json::from_str::<serde::Value>(&source)
        .ok()
        .and_then(|v| v.get("version").and_then(serde::Value::as_u64));
    let (envelope, what) = match version {
        Some(3) => (
            oef_shard::upgrade_v3_snapshot(&source)
                .map_err(|e| oef_service::ClientError::Protocol(e.to_string()))?,
            "upgraded v3 envelope",
        ),
        Some(4) => (
            oef_shard::upgrade_v4_snapshot(&source)
                .map_err(|e| oef_service::ClientError::Protocol(e.to_string()))?,
            "upgraded v4 envelope",
        ),
        _ => (
            oef_shard::wrap_v2_snapshot(&source)
                .map_err(|e| oef_service::ClientError::Protocol(e.to_string()))?,
            "wrapped v2 snapshot",
        ),
    };
    let json = serde_json::to_string(&envelope)
        .map_err(|e| oef_service::ClientError::Protocol(e.to_string()))?;
    oef_journal::atomic_write(std::path::Path::new(output), json.as_bytes())
        .map_err(oef_service::ClientError::Io)?;
    println!(
        "{what} {input} (round {}, {} shard(s)) into v{} envelope {output}",
        envelope.round,
        envelope.shards.len(),
        oef_shard::FEDERATED_SNAPSHOT_VERSION,
    );
    Ok(())
}

fn shutdown(addr: &str) -> ClientResult<()> {
    ServiceClient::connect(addr)?.shutdown()?;
    println!("daemon acknowledged shutdown");
    Ok(())
}

fn check(label: &str, ok: bool) -> ClientResult<()> {
    if ok {
        println!("ok: {label}");
        Ok(())
    } else {
        Err(oef_service::ClientError::Protocol(format!(
            "smoke check failed: {label}"
        )))
    }
}

fn smoke(addr: &str) -> ClientResult<()> {
    let mut client = ServiceClient::connect(addr)?;

    let before = client.status()?;
    check("daemon answers status", before.total_devices > 0)?;

    let alice = client.join("smoke-alice", 1, &[1.0, 1.18, 1.39])?;
    let bob = client.join("smoke-bob", 1, &[1.0, 1.55, 2.15])?;
    check("handles are distinct", alice != bob)?;

    client.submit_job(alice, "vgg16", 2, 1e9)?;
    client.submit_job(bob, "lstm", 2, 1e9)?;

    let mut warm_rounds = 0;
    for i in 0..3 {
        let round = client.tick()?;
        check(
            &format!("round {i} schedules both tenants"),
            round.tenants.len() == 2,
        )?;
        check(
            &format!("round {i} hands out devices"),
            round.tenants.iter().map(|t| t.devices_held).sum::<usize>() > 0,
        )?;
        if round.warm_start {
            warm_rounds += 1;
        }
    }
    check("warm starts after the first round", warm_rounds >= 1)?;

    client.leave(alice)?;
    let round = client.tick()?;
    check(
        "departed tenant is no longer scheduled",
        round.tenants.len() == 1 && round.tenants[0].tenant == bob,
    )?;

    // Topology churn: host handles are stable across removal, and a removed
    // handle is dead forever — a re-added host gets a fresh one.
    let hosts_before = client.status()?.hosts;
    let added = client.add_host(0, 4)?;
    let survivors: Vec<u64> = client
        .status()?
        .topology
        .iter()
        .map(|h| h.host)
        .filter(|&h| h != added)
        .collect();
    check(
        "added host grows the topology",
        survivors.len() == hosts_before,
    )?;
    client.remove_host(added)?;
    let after_remove = client.status()?;
    check(
        "surviving handles are untouched by the removal",
        after_remove
            .topology
            .iter()
            .map(|h| h.host)
            .collect::<Vec<_>>()
            == survivors,
    )?;
    match client.remove_host(added) {
        Err(oef_service::ClientError::Service {
            code: oef_service::ErrorCode::UnknownHost,
            ..
        }) => {
            println!("ok: removed handle is dead (UnknownHost)");
        }
        other => {
            return Err(oef_service::ClientError::Protocol(format!(
                "smoke check failed: dead handle should be UnknownHost, got {other:?}"
            )))
        }
    }
    let readded = client.add_host(0, 4)?;
    check("re-added host gets a fresh handle", readded != added)?;
    client.remove_host(readded)?;
    let round = client.tick()?;
    check(
        "scheduling survives topology churn",
        round.tenants.len() == 1,
    )?;

    let metrics = client.metrics()?;
    check("metrics count the rounds", metrics.rounds_solved >= 5)?;

    client.shutdown()?;
    println!("ok: daemon acknowledged shutdown");
    Ok(())
}

fn smoke_shard(addr: &str) -> ClientResult<()> {
    let mut client = ServiceClient::connect(addr)?;

    let before = client.status()?;
    check(
        "daemon is sharded (start it with --shards 2)",
        before.shards.len() >= 2,
    )?;
    let shards = before.shards.len();

    // Join enough tenants to span every shard under least-loaded placement.
    let mut handles = Vec::new();
    for i in 0..(2 * shards) {
        let handle = client.join(
            &format!("shard-smoke-{i}"),
            1,
            &[1.0, 1.2 + 0.05 * i as f64, 1.5 + 0.1 * i as f64],
        )?;
        client.submit_job(handle, "model", 1, 1e9)?;
        handles.push(handle);
    }
    let spanned: std::collections::HashSet<usize> =
        handles.iter().map(|&h| sharded::shard_of(h)).collect();
    check(
        &format!("tenants span all {shards} shards"),
        spanned.len() == shards,
    )?;

    // Cross-shard aggregation: the totals must be exactly the per-shard sums.
    let status = client.status()?;
    check(
        "Status.tenants equals the sum of the shard entries",
        status.tenants == 2 * shards
            && status.shards.iter().map(|s| s.tenants).sum::<usize>() == status.tenants,
    )?;
    check(
        "Status.hosts and devices aggregate across shards",
        status.shards.iter().map(|s| s.hosts).sum::<usize>() == status.hosts
            && status.shards.iter().map(|s| s.total_devices).sum::<usize>() == status.total_devices,
    )?;
    check(
        "topology handles carry every shard index",
        status
            .topology
            .iter()
            .map(|h| sharded::shard_of(h.host))
            .collect::<std::collections::HashSet<_>>()
            .len()
            == shards,
    )?;
    check("uptime is reported", status.uptime_secs >= 0.0)?;

    // A parallel round schedules every tenant on every shard.
    let round = client.tick()?;
    check(
        "parallel tick merges all shards' tenants",
        round.tenants.len() == 2 * shards,
    )?;
    check(
        "every scheduled tenant keys by its wire handle",
        round.tenants.iter().all(|t| handles.contains(&t.tenant)),
    )?;

    // Host churn on one shard must not disturb tenants on another: remove a
    // shard-1 host's worth of capacity, then drive a shard-0 tenant.
    let added = client.add_host(0, 4)?;
    let victim_shard = sharded::shard_of(added);
    let other_tenant = handles
        .iter()
        .copied()
        .find(|&h| sharded::shard_of(h) != victim_shard)
        .expect("tenants span shards");
    client.remove_host(added)?;
    client.update_speedups(other_tenant, &[1.0, 1.3, 1.7])?;
    let round = client.tick()?;
    check(
        "tenant on another shard survives host churn",
        round.tenants.iter().any(|t| t.tenant == other_tenant),
    )?;

    let metrics = client.metrics()?;
    check("federation counts its rounds", metrics.rounds_solved >= 2)?;
    check(
        "metrics aggregate tenants across shards",
        metrics.tenants == 2 * shards,
    )?;

    // Live migration over the wire: move one tenant to another shard, then
    // prove its old handle still answers — before and after a
    // snapshot/restore round trip (the forwarding table is durable state).
    let mover = handles[0];
    let target = (sharded::shard_of(mover) + 1) % shards;
    let fresh = client.migrate_tenant(mover, target)?;
    check(
        "migration re-mints the handle on the target shard",
        fresh != mover && sharded::shard_of(fresh) == target,
    )?;
    client.update_speedups(mover, &[1.0, 1.25, 1.60])?;
    println!("ok: pre-migration handle still answers");
    let job = client.submit_job(mover, "forwarded", 1, 1e8)?;
    let round = client.tick()?;
    check(
        "migrated tenant is scheduled under its new handle",
        round.tenants.iter().any(|t| t.tenant == fresh),
    )?;
    let status = client.status()?;
    check(
        "forwarding table reports the migration",
        status.forwarding_entries >= 1 && status.forwarding_depth >= 1,
    )?;
    let metrics = client.metrics()?;
    check("metrics count the migration", metrics.tenants_migrated >= 1)?;

    let snapshot = client.snapshot()?;
    let restored = client.restore(&snapshot)?;
    check("restore keeps every tenant", restored == 2 * shards)?;
    client.finish_job(mover, job)?;
    println!("ok: pre-migration handle and job id survive snapshot/restore");

    // One rebalance pass must answer (usually with zero moves here — the
    // smoke population is balanced).
    let report = client.rebalance()?;
    check(
        "rebalance replies within its threshold",
        report.imbalance_after <= report.threshold || !report.moves.is_empty(),
    )?;

    client.shutdown()?;
    println!("ok: sharded daemon acknowledged shutdown");
    Ok(())
}

/// What `smoke-crash-prepare` records and `smoke-crash-verify` checks: the
/// exact state CI expects the recovered daemon to reproduce.
#[derive(serde::Serialize, serde::Deserialize)]
struct CrashRecord {
    /// Rounds run before the crash.
    round: usize,
    /// One entry per pre-crash tenant.
    tenants: Vec<RecordedTenant>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct RecordedTenant {
    /// Wire handle minted before the crash; must still resolve after.
    handle: u64,
    /// A job submitted before the crash; must still be finishable after.
    job: u64,
    /// Fractional allocation of the last pre-crash round.
    gpu_shares: Vec<f64>,
    /// Promised throughput of the last pre-crash round.
    estimated_throughput: f64,
}

/// Tolerance for allocation comparisons: the recovered daemon replays the
/// same commands against the same snapshot, so only float formatting noise
/// is admissible.
const CRASH_EPSILON: f64 = 1e-6;

fn smoke_crash_prepare(addr: &str, file: &str) -> ClientResult<()> {
    let mut client = ServiceClient::connect(addr)?;

    let alice = client.join("crash-alice", 1, &[1.0, 1.18, 1.39])?;
    let bob = client.join("crash-bob", 2, &[1.0, 1.55, 2.15])?;
    let alice_job = client.submit_job(alice, "vgg16", 2, 1e9)?;
    let bob_job = client.submit_job(bob, "lstm", 2, 1e9)?;

    let mut last = None;
    for i in 0..3 {
        let round = client.tick()?;
        check(
            &format!("round {i} schedules both tenants"),
            round.tenants.len() == 2,
        )?;
        last = Some(round);
    }
    let last = last.expect("three rounds ran");

    let recorded = |handle: u64, job: u64| -> ClientResult<RecordedTenant> {
        let t = last
            .tenants
            .iter()
            .find(|t| t.tenant == handle)
            .ok_or_else(|| {
                oef_service::ClientError::Protocol(format!(
                    "tenant {} missing from the last pre-crash round",
                    sharded::format(handle)
                ))
            })?;
        Ok(RecordedTenant {
            handle,
            job,
            gpu_shares: t.gpu_shares.clone(),
            estimated_throughput: t.estimated_throughput,
        })
    };
    let record = CrashRecord {
        round: client.status()?.round,
        tenants: vec![recorded(alice, alice_job)?, recorded(bob, bob_job)?],
    };
    let json = serde_json::to_string(&record)
        .map_err(|e| oef_service::ClientError::Protocol(e.to_string()))?;
    oef_journal::atomic_write(std::path::Path::new(file), json.as_bytes())
        .map_err(oef_service::ClientError::Io)?;
    println!(
        "ok: recorded {} tenant(s) at round {} into {file} — kill the daemon now",
        record.tenants.len(),
        record.round
    );
    Ok(())
}

fn smoke_crash_verify(addr: &str, file: &str) -> ClientResult<()> {
    let source = std::fs::read_to_string(file).map_err(oef_service::ClientError::Io)?;
    let record: CrashRecord = serde_json::from_str(&source)
        .map_err(|e| oef_service::ClientError::Protocol(format!("bad record {file}: {e}")))?;
    let mut client = ServiceClient::connect(addr)?;

    let status = client.status()?;
    check(
        "recovered daemon is at the pre-crash round",
        status.round == record.round,
    )?;
    check(
        "recovered daemon holds every pre-crash tenant",
        status.tenants == record.tenants.len(),
    )?;

    // A fresh round against recovered state must reproduce the pre-crash
    // allocation: same tenants, same jobs, same profiles → the LP sees the
    // same inputs.  (`devices_held` is excluded on purpose — it tracks
    // rounding deviations that legitimately alternate between consecutive
    // rounds.)
    let round = client.tick()?;
    for tenant in &record.tenants {
        let t = round
            .tenants
            .iter()
            .find(|t| t.tenant == tenant.handle)
            .ok_or_else(|| {
                oef_service::ClientError::Protocol(format!(
                    "smoke check failed: pre-crash handle {} is not scheduled after recovery",
                    sharded::format(tenant.handle)
                ))
            })?;
        check(
            &format!(
                "tenant {} gpu_shares match to {CRASH_EPSILON}",
                sharded::format(tenant.handle)
            ),
            t.gpu_shares.len() == tenant.gpu_shares.len()
                && t.gpu_shares
                    .iter()
                    .zip(&tenant.gpu_shares)
                    .all(|(a, b)| (a - b).abs() <= CRASH_EPSILON),
        )?;
        check(
            &format!(
                "tenant {} estimated_throughput matches to {CRASH_EPSILON}",
                sharded::format(tenant.handle)
            ),
            (t.estimated_throughput - tenant.estimated_throughput).abs() <= CRASH_EPSILON,
        )?;
    }

    // Every pre-crash handle and job id must still resolve.
    for tenant in &record.tenants {
        client.update_speedups(tenant.handle, &[1.0, 1.3, 1.7])?;
        client.finish_job(tenant.handle, tenant.job)?;
    }
    println!(
        "ok: recovered daemon reproduced round {} and resolved {} pre-crash handle(s)",
        record.round,
        record.tenants.len()
    );
    Ok(())
}
