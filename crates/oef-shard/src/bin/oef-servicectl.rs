//! Operator client for `oef-serviced`.
//!
//! ```text
//! oef-servicectl status   <addr>          # print a status line (per shard when sharded)
//! oef-servicectl metrics  <addr>          # print the metrics registry as JSON
//! oef-servicectl tick     <addr>          # run one scheduling round
//! oef-servicectl snapshot <addr> <file>   # save a state snapshot
//! oef-servicectl shutdown <addr>          # stop the daemon
//! oef-servicectl smoke    <addr>          # scripted join/tick/leave session (CI)
//! oef-servicectl smoke-shard <addr>       # scripted cross-shard session (CI, --shards daemon)
//! oef-servicectl migrate-snapshot <in> <out>  # wrap a v2 snapshot into a v3 envelope
//! ```
//!
//! `smoke` drives a short but complete session — two tenants join, submit
//! jobs, three rounds run, allocations are sanity-checked, one tenant leaves,
//! the daemon shuts down — and exits non-zero on any deviation.  CI uses it
//! to prove a freshly built daemon serves the full protocol on a loopback
//! port and terminates cleanly.  `smoke-shard` is its federation sibling: it
//! requires a daemon started with `--shards ≥ 2`, spreads tenants across
//! shards, and asserts that `Status` aggregates exactly the per-shard
//! entries.
//!
//! `migrate-snapshot` is offline (no daemon involved): it validates a v2
//! snapshot file and wraps it into a single-shard federated (v3) envelope
//! that `oef-serviced --restore` will serve as a 1-shard coordinator.
//!
//! Handles render as `shard:slot@generation` (e.g. `0:3@1`) — the unsharded
//! daemon is shard 0.

use oef_core::sharded;
use oef_service::{ClientResult, ServiceClient};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, addr] if cmd == "status" => status(addr),
        [cmd, addr] if cmd == "metrics" => metrics(addr),
        [cmd, addr] if cmd == "tick" => tick(addr),
        [cmd, addr, file] if cmd == "snapshot" => snapshot(addr, file),
        [cmd, addr] if cmd == "shutdown" => shutdown(addr),
        [cmd, addr] if cmd == "smoke" => smoke(addr),
        [cmd, addr] if cmd == "smoke-shard" => smoke_shard(addr),
        [cmd, input, output] if cmd == "migrate-snapshot" => migrate_snapshot(input, output),
        _ => {
            eprintln!(
                "usage: oef-servicectl <status|metrics|tick|shutdown|smoke|smoke-shard> <addr>\n\
                 \x20      oef-servicectl snapshot <addr> <file>\n\
                 \x20      oef-servicectl migrate-snapshot <v2-file> <v3-file>"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("oef-servicectl: {e}");
        std::process::exit(1);
    }
}

fn status(addr: &str) -> ClientResult<()> {
    let report = ServiceClient::connect(addr)?.status()?;
    println!(
        "policy={} protocol=v{} uptime={:.1}s round={} time={}s tenants={} jobs={} hosts={} \
         devices={}",
        report.policy,
        report.protocol,
        report.uptime_secs,
        report.round,
        report.time_secs,
        report.tenants,
        report.jobs,
        report.hosts,
        report.total_devices
    );
    for shard in &report.shards {
        println!(
            "  shard {} round={} tenants={} jobs={} hosts={} devices={}",
            shard.shard, shard.round, shard.tenants, shard.jobs, shard.hosts, shard.total_devices
        );
    }
    for host in &report.topology {
        println!(
            "  host {} gpu_type={} gpus={}",
            sharded::format(host.host),
            host.gpu_type,
            host.num_gpus
        );
    }
    Ok(())
}

fn metrics(addr: &str) -> ClientResult<()> {
    let report = ServiceClient::connect(addr)?.metrics()?;
    match serde_json::to_string(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => println!("metrics serialization failed: {e}"),
    }
    Ok(())
}

fn tick(addr: &str) -> ClientResult<()> {
    let round = ServiceClient::connect(addr)?.tick()?;
    println!(
        "round={} solver={:.6}s warm={} active_tenants={}",
        round.round,
        round.solver_time_secs,
        round.warm_start,
        round.tenants.len()
    );
    Ok(())
}

fn snapshot(addr: &str, file: &str) -> ClientResult<()> {
    let snapshot = ServiceClient::connect(addr)?.snapshot()?;
    std::fs::write(file, snapshot).map_err(oef_service::ClientError::Io)?;
    println!("snapshot written to {file}");
    Ok(())
}

fn migrate_snapshot(input: &str, output: &str) -> ClientResult<()> {
    let v2 = std::fs::read_to_string(input).map_err(oef_service::ClientError::Io)?;
    let envelope = oef_shard::wrap_v2_snapshot(&v2)
        .map_err(|e| oef_service::ClientError::Protocol(e.to_string()))?;
    let json = serde_json::to_string(&envelope)
        .map_err(|e| oef_service::ClientError::Protocol(e.to_string()))?;
    std::fs::write(output, json).map_err(oef_service::ClientError::Io)?;
    println!(
        "wrapped v2 snapshot {input} (round {}) into single-shard v3 envelope {output}",
        envelope.round
    );
    Ok(())
}

fn shutdown(addr: &str) -> ClientResult<()> {
    ServiceClient::connect(addr)?.shutdown()?;
    println!("daemon acknowledged shutdown");
    Ok(())
}

fn check(label: &str, ok: bool) -> ClientResult<()> {
    if ok {
        println!("ok: {label}");
        Ok(())
    } else {
        Err(oef_service::ClientError::Protocol(format!(
            "smoke check failed: {label}"
        )))
    }
}

fn smoke(addr: &str) -> ClientResult<()> {
    let mut client = ServiceClient::connect(addr)?;

    let before = client.status()?;
    check("daemon answers status", before.total_devices > 0)?;

    let alice = client.join("smoke-alice", 1, &[1.0, 1.18, 1.39])?;
    let bob = client.join("smoke-bob", 1, &[1.0, 1.55, 2.15])?;
    check("handles are distinct", alice != bob)?;

    client.submit_job(alice, "vgg16", 2, 1e9)?;
    client.submit_job(bob, "lstm", 2, 1e9)?;

    let mut warm_rounds = 0;
    for i in 0..3 {
        let round = client.tick()?;
        check(
            &format!("round {i} schedules both tenants"),
            round.tenants.len() == 2,
        )?;
        check(
            &format!("round {i} hands out devices"),
            round.tenants.iter().map(|t| t.devices_held).sum::<usize>() > 0,
        )?;
        if round.warm_start {
            warm_rounds += 1;
        }
    }
    check("warm starts after the first round", warm_rounds >= 1)?;

    client.leave(alice)?;
    let round = client.tick()?;
    check(
        "departed tenant is no longer scheduled",
        round.tenants.len() == 1 && round.tenants[0].tenant == bob,
    )?;

    // Topology churn: host handles are stable across removal, and a removed
    // handle is dead forever — a re-added host gets a fresh one.
    let hosts_before = client.status()?.hosts;
    let added = client.add_host(0, 4)?;
    let survivors: Vec<u64> = client
        .status()?
        .topology
        .iter()
        .map(|h| h.host)
        .filter(|&h| h != added)
        .collect();
    check(
        "added host grows the topology",
        survivors.len() == hosts_before,
    )?;
    client.remove_host(added)?;
    let after_remove = client.status()?;
    check(
        "surviving handles are untouched by the removal",
        after_remove
            .topology
            .iter()
            .map(|h| h.host)
            .collect::<Vec<_>>()
            == survivors,
    )?;
    match client.remove_host(added) {
        Err(oef_service::ClientError::Service {
            code: oef_service::ErrorCode::UnknownHost,
            ..
        }) => {
            println!("ok: removed handle is dead (UnknownHost)");
        }
        other => {
            return Err(oef_service::ClientError::Protocol(format!(
                "smoke check failed: dead handle should be UnknownHost, got {other:?}"
            )))
        }
    }
    let readded = client.add_host(0, 4)?;
    check("re-added host gets a fresh handle", readded != added)?;
    client.remove_host(readded)?;
    let round = client.tick()?;
    check(
        "scheduling survives topology churn",
        round.tenants.len() == 1,
    )?;

    let metrics = client.metrics()?;
    check("metrics count the rounds", metrics.rounds_solved >= 5)?;

    client.shutdown()?;
    println!("ok: daemon acknowledged shutdown");
    Ok(())
}

fn smoke_shard(addr: &str) -> ClientResult<()> {
    let mut client = ServiceClient::connect(addr)?;

    let before = client.status()?;
    check(
        "daemon is sharded (start it with --shards 2)",
        before.shards.len() >= 2,
    )?;
    let shards = before.shards.len();

    // Join enough tenants to span every shard under least-loaded placement.
    let mut handles = Vec::new();
    for i in 0..(2 * shards) {
        let handle = client.join(
            &format!("shard-smoke-{i}"),
            1,
            &[1.0, 1.2 + 0.05 * i as f64, 1.5 + 0.1 * i as f64],
        )?;
        client.submit_job(handle, "model", 1, 1e9)?;
        handles.push(handle);
    }
    let spanned: std::collections::HashSet<usize> =
        handles.iter().map(|&h| sharded::shard_of(h)).collect();
    check(
        &format!("tenants span all {shards} shards"),
        spanned.len() == shards,
    )?;

    // Cross-shard aggregation: the totals must be exactly the per-shard sums.
    let status = client.status()?;
    check(
        "Status.tenants equals the sum of the shard entries",
        status.tenants == 2 * shards
            && status.shards.iter().map(|s| s.tenants).sum::<usize>() == status.tenants,
    )?;
    check(
        "Status.hosts and devices aggregate across shards",
        status.shards.iter().map(|s| s.hosts).sum::<usize>() == status.hosts
            && status.shards.iter().map(|s| s.total_devices).sum::<usize>() == status.total_devices,
    )?;
    check(
        "topology handles carry every shard index",
        status
            .topology
            .iter()
            .map(|h| sharded::shard_of(h.host))
            .collect::<std::collections::HashSet<_>>()
            .len()
            == shards,
    )?;
    check("uptime is reported", status.uptime_secs >= 0.0)?;

    // A parallel round schedules every tenant on every shard.
    let round = client.tick()?;
    check(
        "parallel tick merges all shards' tenants",
        round.tenants.len() == 2 * shards,
    )?;
    check(
        "every scheduled tenant keys by its wire handle",
        round.tenants.iter().all(|t| handles.contains(&t.tenant)),
    )?;

    // Host churn on one shard must not disturb tenants on another: remove a
    // shard-1 host's worth of capacity, then drive a shard-0 tenant.
    let added = client.add_host(0, 4)?;
    let victim_shard = sharded::shard_of(added);
    let other_tenant = handles
        .iter()
        .copied()
        .find(|&h| sharded::shard_of(h) != victim_shard)
        .expect("tenants span shards");
    client.remove_host(added)?;
    client.update_speedups(other_tenant, &[1.0, 1.3, 1.7])?;
    let round = client.tick()?;
    check(
        "tenant on another shard survives host churn",
        round.tenants.iter().any(|t| t.tenant == other_tenant),
    )?;

    let metrics = client.metrics()?;
    check("federation counts its rounds", metrics.rounds_solved >= 2)?;
    check(
        "metrics aggregate tenants across shards",
        metrics.tenants == 2 * shards,
    )?;

    client.shutdown()?;
    println!("ok: sharded daemon acknowledged shutdown");
    Ok(())
}
