//! The scheduling daemon binary.
//!
//! ```text
//! oef-serviced [--addr HOST:PORT] [--policy NAME] [--round-secs SECS]
//!              [--fluid] [--max-tenants N] [--shards N] [--placement NAME]
//!              [--restore FILE]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port), prints one
//! `oef-serviced listening on <addr>` line to stdout, and serves until a
//! `Shutdown` command arrives, then exits 0.
//!
//! With `--shards N` (N ≥ 2) the daemon serves a [`ShardCoordinator`]: N
//! independent scheduler shards (one paper-cluster topology each), handles
//! tagged with their shard index, ticks solved in parallel.  `--placement`
//! picks the tenant/host placement strategy (`least-loaded`, the default, or
//! `round-robin`).  Admission quotas are **per shard**: `--max-tenants M`
//! with `--shards N` admits up to N × M tenants federation-wide.  Without
//! `--shards` the daemon is the classic unsharded service — wire-identical
//! to shard 0 of a federation.
//!
//! With `--restore`, the daemon resumes from a snapshot file written by
//! `oef-servicectl snapshot` (or the `Snapshot` wire command) instead of
//! starting empty; the file's `version` field decides the shape (v2 → one
//! unsharded daemon, v4 federated envelope → coordinator; a v3 envelope is
//! refused with a pointer at `oef-servicectl migrate-snapshot`), so no
//! topology flags apply.

use oef_cluster::ClusterTopology;
use oef_service::{CommandHandler, SchedulerService, Server, ServiceConfig};
use oef_shard::{placement_from_name, ShardCoordinator};
use std::io::Write;

struct Args {
    addr: String,
    restore: Option<String>,
    shards: usize,
    placement: String,
    config: ServiceConfig,
    /// Config flags seen on the command line; `--restore` rejects these
    /// instead of silently ignoring them (the snapshot's embedded config
    /// wins on a restore).
    config_flags: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7441".to_string(),
        restore: None,
        shards: 1,
        placement: "least-loaded".to_string(),
        config: ServiceConfig::default(),
        config_flags: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--policy" => {
                args.config.policy = value("--policy")?;
                args.config_flags.push(flag);
            }
            "--round-secs" => {
                args.config.round_secs = value("--round-secs")?
                    .parse()
                    .map_err(|e| format!("bad --round-secs: {e}"))?;
                args.config_flags.push(flag);
            }
            "--max-tenants" => {
                args.config.limits.max_tenants = value("--max-tenants")?
                    .parse()
                    .map_err(|e| format!("bad --max-tenants: {e}"))?;
                args.config_flags.push(flag);
            }
            "--fluid" => {
                args.config.physical_placement = false;
                args.config_flags.push(flag);
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                args.config_flags.push(flag);
            }
            "--placement" => {
                args.placement = value("--placement")?;
                args.config_flags.push(flag);
            }
            "--restore" => args.restore = Some(value("--restore")?),
            "--help" | "-h" => {
                println!(
                    "usage: oef-serviced [--addr HOST:PORT] [--policy NAME] \
                     [--round-secs SECS] [--fluid] [--max-tenants N] [--shards N] \
                     [--placement least-loaded|round-robin] [--restore FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.restore.is_some() && !args.config_flags.is_empty() {
        return Err(format!(
            "--restore resumes with the snapshot's embedded configuration (and shard \
             count); drop the conflicting flag(s) {} (or edit the snapshot's `config` field)",
            args.config_flags.join(", ")
        ));
    }
    Ok(args)
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("oef-serviced: {message}");
    std::process::exit(2);
}

/// Spawns the server, prints the listening line and blocks until shutdown.
fn serve<C: CommandHandler>(service: C, addr: &str, rounds_run: fn(&C) -> usize) {
    let server = match Server::spawn(service, addr) {
        Ok(server) => server,
        Err(e) => fail(format!("cannot bind {addr}: {e}")),
    };
    println!("oef-serviced listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    let service = server.join();
    println!(
        "oef-serviced shut down cleanly after {} rounds",
        rounds_run(&service)
    );
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => fail(message),
    };

    if let Some(path) = &args.restore {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read snapshot {path}: {e}")));
        // The snapshot's version field decides the daemon's shape: a v2
        // snapshot restores the classic unsharded service, a v4 envelope a
        // full federation.
        let version = serde_json::from_str::<serde::Value>(&json)
            .ok()
            .and_then(|v| v.get("version").and_then(serde::Value::as_u64));
        match version {
            Some(3) => {
                fail(format!(
                    "{path} is a v3 federated envelope (predates handle forwarding); upgrade \
                     it first with `oef-servicectl migrate-snapshot {path} <v4-file>`"
                ));
            }
            Some(4) => {
                let coordinator =
                    ShardCoordinator::from_federated_json(&json).unwrap_or_else(|e| fail(e));
                println!(
                    "oef-serviced restoring {} shard(s) from {path}",
                    coordinator.num_shards()
                );
                serve(coordinator, &args.addr, ShardCoordinator::rounds_run);
            }
            _ => {
                let service =
                    SchedulerService::from_snapshot_json(&json).unwrap_or_else(|e| fail(e));
                serve(service, &args.addr, SchedulerService::rounds_run);
            }
        }
        return;
    }

    if args.shards > 1 {
        let placement = placement_from_name(&args.placement).unwrap_or_else(|| {
            fail(format!(
                "unknown placement `{}` (supported: least-loaded, round-robin)",
                args.placement
            ))
        });
        let topologies = (0..args.shards)
            .map(|_| ClusterTopology::paper_cluster())
            .collect();
        let coordinator = ShardCoordinator::new(topologies, args.config.clone(), placement)
            .unwrap_or_else(|e| fail(e));
        serve(coordinator, &args.addr, ShardCoordinator::rounds_run);
    } else {
        let service = SchedulerService::new(ClusterTopology::paper_cluster(), args.config.clone())
            .unwrap_or_else(|e| fail(e));
        serve(service, &args.addr, SchedulerService::rounds_run);
    }
}
