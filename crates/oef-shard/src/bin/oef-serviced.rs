//! The scheduling daemon binary.
//!
//! ```text
//! oef-serviced [--addr HOST:PORT] [--metrics-addr HOST:PORT] [--policy NAME]
//!              [--round-secs SECS] [--fluid] [--max-tenants N] [--shards N]
//!              [--placement NAME] [--restore FILE]
//!              [--journal-dir DIR] [--fsync-every N] [--compact-every N]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port), prints one
//! `oef-serviced listening on <addr>` line to stdout, and serves until a
//! `Shutdown` command arrives, then exits 0.
//!
//! With `--metrics-addr` the daemon also serves `GET /metrics` (Prometheus
//! text exposition: per-shard solve-latency histograms, solver-cache and
//! journal counters, per-tenant fairness-SLO series) and `GET /healthz` on a
//! separate listener, printing one `oef-serviced metrics listening on
//! <addr>` line.  Scrapes read the same atomic cells the worker thread
//! updates — they never queue behind (or block) commands.
//!
//! With `--shards N` (N ≥ 2) the daemon serves a [`ShardCoordinator`]: N
//! independent scheduler shards (one paper-cluster topology each), handles
//! tagged with their shard index, ticks solved in parallel.  `--placement`
//! picks the tenant/host placement strategy (`least-loaded`, the default, or
//! `round-robin`).  Admission quotas are **per shard**: `--max-tenants M`
//! with `--shards N` admits up to N × M tenants federation-wide.  Without
//! `--shards` the daemon is the classic unsharded service — wire-identical
//! to shard 0 of a federation.
//!
//! With `--restore`, the daemon resumes from a snapshot file written by
//! `oef-servicectl snapshot` (or the `Snapshot` wire command) instead of
//! starting empty; the file's `version` field decides the shape (v2 → one
//! unsharded daemon, v5 federated envelope → coordinator; v3/v4 envelopes
//! are refused with a pointer at `oef-servicectl migrate-snapshot`), so no
//! topology flags apply.
//!
//! With `--journal-dir DIR` the daemon is **durable**: every mutating
//! command is written to an append-only, checksummed journal *before* it is
//! applied, and `DIR/snapshot.json` is atomically checkpointed every
//! `--compact-every` commands (journal segments the checkpoint covers are
//! deleted).  If `DIR` already holds a journal the daemon *recovers* —
//! snapshot restore plus deterministic replay of the journal tail, torn or
//! corrupt tails truncated at the last valid record — and no config flags
//! apply (the checkpoint's embedded config wins).  `--fsync-every N` group-
//! commits: fsync after every N-th append (1 = synchronous, the default;
//! larger batches trade a bounded window of acknowledged-but-unsynced
//! commands for throughput).  A journaled daemon always serves a
//! coordinator (`--shards` defaults to 1; the v5 envelope is the journaled
//! checkpoint format), and a clean shutdown checkpoints on exit so restart
//! never needs tail replay.

use oef_cluster::ClusterTopology;
use oef_service::{CommandHandler, SchedulerService, Server, ServiceConfig};
use oef_shard::{placement_from_name, JournalOptions, Journaled, ShardCoordinator};
use oef_trace::{TraceRing, Tracer};
use std::io::Write;
use std::path::Path;

struct Args {
    addr: String,
    metrics_addr: Option<String>,
    restore: Option<String>,
    journal_dir: Option<String>,
    journal: JournalOptions,
    shards: usize,
    placement: String,
    /// `--trace-sample N`: record every N-th command as a span tree (0 =
    /// tracing off, the default — no per-command tracing work at all).
    trace_sample: u64,
    config: ServiceConfig,
    /// Config flags seen on the command line; `--restore` and journal
    /// recovery reject these instead of silently ignoring them (the
    /// snapshot's embedded config wins on a restore).
    config_flags: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7441".to_string(),
        metrics_addr: None,
        restore: None,
        journal_dir: None,
        journal: JournalOptions::default(),
        shards: 1,
        placement: "least-loaded".to_string(),
        trace_sample: 0,
        config: ServiceConfig::default(),
        config_flags: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--policy" => {
                args.config.policy = value("--policy")?;
                args.config_flags.push(flag);
            }
            "--round-secs" => {
                args.config.round_secs = value("--round-secs")?
                    .parse()
                    .map_err(|e| format!("bad --round-secs: {e}"))?;
                args.config_flags.push(flag);
            }
            "--max-tenants" => {
                args.config.limits.max_tenants = value("--max-tenants")?
                    .parse()
                    .map_err(|e| format!("bad --max-tenants: {e}"))?;
                args.config_flags.push(flag);
            }
            "--fluid" => {
                args.config.physical_placement = false;
                args.config_flags.push(flag);
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                args.config_flags.push(flag);
            }
            "--placement" => {
                args.placement = value("--placement")?;
                args.config_flags.push(flag);
            }
            "--trace-sample" => {
                args.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|e| format!("bad --trace-sample: {e}"))?;
            }
            "--restore" => args.restore = Some(value("--restore")?),
            "--journal-dir" => args.journal_dir = Some(value("--journal-dir")?),
            "--fsync-every" => {
                args.journal.fsync_every = value("--fsync-every")?
                    .parse()
                    .map_err(|e| format!("bad --fsync-every: {e}"))?;
            }
            "--compact-every" => {
                args.journal.compact_every = value("--compact-every")?
                    .parse()
                    .map_err(|e| format!("bad --compact-every: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: oef-serviced [--addr HOST:PORT] [--metrics-addr HOST:PORT] \
                     [--policy NAME] [--round-secs SECS] [--fluid] [--max-tenants N] \
                     [--shards N] [--placement least-loaded|round-robin] [--restore FILE] \
                     [--journal-dir DIR] [--fsync-every N] [--compact-every N] \
                     [--trace-sample N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.journal_dir.is_none()
        && args.journal.fsync_every != JournalOptions::default().fsync_every
    {
        return Err("--fsync-every needs --journal-dir".to_string());
    }
    if args.journal_dir.is_none()
        && args.journal.compact_every != JournalOptions::default().compact_every
    {
        return Err("--compact-every needs --journal-dir".to_string());
    }
    if args.restore.is_some() && !args.config_flags.is_empty() {
        return Err(format!(
            "--restore resumes with the snapshot's embedded configuration (and shard \
             count); drop the conflicting flag(s) {} (or edit the snapshot's `config` field)",
            args.config_flags.join(", ")
        ));
    }
    Ok(args)
}

/// Tenant series the `oef_tenant_solve_cost` family may hold (plus the
/// `other` bucket) — scrape cardinality stays bounded at any tenant count.
const ATTRIB_TOP_K: usize = 10;

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("oef-serviced: {message}");
    std::process::exit(2);
}

/// Spawns the server (and, with `--metrics-addr`, the Prometheus exposition
/// listener), prints the listening line(s) and blocks until shutdown.  With
/// a tracer, sampled commands record span trees into its ring, served as
/// `GET /traces` on the metrics listener.
fn serve<C: CommandHandler>(
    mut service: C,
    addr: &str,
    metrics_addr: Option<&str>,
    tracer: Option<Tracer>,
    rounds_run: fn(&C) -> usize,
) {
    let metrics_server = metrics_addr.map(|maddr| {
        let registry = oef_obs::Registry::new();
        service.attach_observability(&registry);
        // Per-tenant solve-cost attribution rides on the metrics listener:
        // the bounded `oef_tenant_solve_cost` family in `/metrics`, the
        // exact cumulative breakdown (joined with the always-on phase
        // profiler) as `GET /attrib`.
        let cost = oef_attrib::AttributionRegistry::new();
        cost.attach(&registry, ATTRIB_TOP_K);
        service.attach_attribution(&cost);
        let attrib_source: oef_obs::JsonSource = {
            let cost = cost.clone();
            std::sync::Arc::new(move || cost.to_json())
        };
        let ring = tracer.as_ref().map(|t| t.ring().clone());
        match oef_obs::MetricsServer::spawn_with_sources(
            registry,
            maddr,
            ring,
            vec![("/attrib".to_string(), attrib_source)],
        ) {
            Ok(server) => server,
            Err(e) => fail(format!("cannot bind metrics listener {maddr}: {e}")),
        }
    });
    let server = match Server::spawn_traced(service, addr, tracer) {
        Ok(server) => server,
        Err(e) => fail(format!("cannot bind {addr}: {e}")),
    };
    println!("oef-serviced listening on {}", server.local_addr());
    if let Some(metrics) = &metrics_server {
        println!("oef-serviced metrics listening on {}", metrics.local_addr());
    }
    let _ = std::io::stdout().flush();
    let service = server.join();
    if let Some(metrics) = metrics_server {
        metrics.stop();
    }
    println!(
        "oef-serviced shut down cleanly after {} rounds",
        rounds_run(&service)
    );
}

/// Builds the coordinator a fresh journal starts from: restored from a
/// snapshot file if `--restore` was given, empty with the flag topology
/// otherwise.
fn journal_seed(args: &Args) -> ShardCoordinator {
    if let Some(path) = &args.restore {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read snapshot {path}: {e}")));
        match snapshot_version(&json) {
            Some(3) | Some(4) => fail(format!(
                "{path} is an old federated envelope; upgrade it first with \
                 `oef-servicectl migrate-snapshot {path} <v5-file>`"
            )),
            Some(5) => ShardCoordinator::from_federated_json(&json).unwrap_or_else(|e| fail(e)),
            // A v2 (unsharded) snapshot journals as a single-shard
            // federation — wire-identical, and the v5 envelope is the only
            // checkpoint format the journal writes.
            _ => {
                let envelope = oef_shard::wrap_v2_snapshot(&json)
                    .unwrap_or_else(|e| fail(format!("{path}: {e}")));
                let json = serde_json::to_string(&envelope)
                    .unwrap_or_else(|e| fail(format!("cannot serialize envelope: {e}")));
                ShardCoordinator::from_federated_json(&json).unwrap_or_else(|e| fail(e))
            }
        }
    } else {
        let placement = placement_from_name(&args.placement).unwrap_or_else(|| {
            fail(format!(
                "unknown placement `{}` (supported: least-loaded, round-robin)",
                args.placement
            ))
        });
        let topologies = (0..args.shards)
            .map(|_| ClusterTopology::paper_cluster())
            .collect();
        ShardCoordinator::new(topologies, args.config.clone(), placement)
            .unwrap_or_else(|e| fail(e))
    }
}

fn snapshot_version(json: &str) -> Option<u64> {
    serde_json::from_str::<serde::Value>(json)
        .ok()
        .and_then(|v| v.get("version").and_then(serde::Value::as_u64))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => fail(message),
    };
    // Structured JSON logs on stderr, written by one dedicated thread so log
    // volume never blocks the worker (over-budget lines are drop-counted).
    oef_trace::init_logger();
    let tracer = (args.trace_sample > 0).then(|| {
        Tracer::with_ring(
            args.trace_sample,
            TraceRing::new(oef_trace::DEFAULT_TOP_K, oef_trace::DEFAULT_RECENT),
        )
    });

    if let Some(dir) = &args.journal_dir {
        let dir = Path::new(dir);
        let journaled = if dir.join("snapshot.json").exists() {
            // Existing journal: the checkpoint + tail are authoritative;
            // flags that would contradict them are refused, not ignored.
            if let Some(path) = &args.restore {
                fail(format!(
                    "{} already holds a journal; refusing --restore {path} (recover from \
                     the journal, or point --journal-dir at a fresh directory)",
                    dir.display()
                ));
            }
            if !args.config_flags.is_empty() {
                fail(format!(
                    "{} already holds a journal whose checkpoint embeds the configuration; \
                     drop the conflicting flag(s) {}",
                    dir.display(),
                    args.config_flags.join(", ")
                ));
            }
            let (journaled, summary) = Journaled::recover_with(dir, args.journal, tracer.as_ref())
                .unwrap_or_else(|e| fail(format!("cannot recover from {}: {e}", dir.display())));
            oef_trace::log_json(
                "info",
                "recovery",
                "recovered from journal",
                &[
                    ("dir", &dir.display().to_string()),
                    ("shards", &journaled.coordinator().num_shards().to_string()),
                    ("base_seq", &summary.base_seq.to_string()),
                    ("replayed", &summary.replayed.to_string()),
                    ("stale_skipped", &summary.stale_skipped.to_string()),
                    ("torn_bytes", &summary.torn_bytes.to_string()),
                    ("gap_dropped", &summary.gap_dropped.to_string()),
                    ("rounds", &summary.rounds.to_string()),
                ],
            );
            println!(
                "oef-serviced recovered {} shard(s) from {}: {} command(s) replayed",
                journaled.coordinator().num_shards(),
                dir.display(),
                summary.replayed,
            );
            journaled
        } else {
            let coordinator = journal_seed(&args);
            println!(
                "oef-serviced journaling {} shard(s) into {} (fsync every {}, checkpoint every {})",
                coordinator.num_shards(),
                dir.display(),
                args.journal.fsync_every,
                args.journal.compact_every,
            );
            Journaled::create(coordinator, dir, args.journal).unwrap_or_else(|e| {
                fail(format!("cannot create journal in {}: {e}", dir.display()))
            })
        };
        serve(
            journaled,
            &args.addr,
            args.metrics_addr.as_deref(),
            tracer,
            Journaled::rounds_run,
        );
        return;
    }

    if let Some(path) = &args.restore {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read snapshot {path}: {e}")));
        // The snapshot's version field decides the daemon's shape: a v2
        // snapshot restores the classic unsharded service, a v5 envelope a
        // full federation.
        match snapshot_version(&json) {
            Some(3) => {
                fail(format!(
                    "{path} is a v3 federated envelope (predates handle forwarding); upgrade \
                     it first with `oef-servicectl migrate-snapshot {path} <v5-file>`"
                ));
            }
            Some(4) => {
                fail(format!(
                    "{path} is a v4 federated envelope (predates the command journal); upgrade \
                     it first with `oef-servicectl migrate-snapshot {path} <v5-file>`"
                ));
            }
            Some(5) => {
                let coordinator =
                    ShardCoordinator::from_federated_json(&json).unwrap_or_else(|e| fail(e));
                println!(
                    "oef-serviced restoring {} shard(s) from {path}",
                    coordinator.num_shards()
                );
                serve(
                    coordinator,
                    &args.addr,
                    args.metrics_addr.as_deref(),
                    tracer,
                    ShardCoordinator::rounds_run,
                );
            }
            _ => {
                let service =
                    SchedulerService::from_snapshot_json(&json).unwrap_or_else(|e| fail(e));
                serve(
                    service,
                    &args.addr,
                    args.metrics_addr.as_deref(),
                    tracer,
                    SchedulerService::rounds_run,
                );
            }
        }
        return;
    }

    if args.shards > 1 {
        let placement = placement_from_name(&args.placement).unwrap_or_else(|| {
            fail(format!(
                "unknown placement `{}` (supported: least-loaded, round-robin)",
                args.placement
            ))
        });
        let topologies = (0..args.shards)
            .map(|_| ClusterTopology::paper_cluster())
            .collect();
        let coordinator = ShardCoordinator::new(topologies, args.config.clone(), placement)
            .unwrap_or_else(|e| fail(e));
        serve(
            coordinator,
            &args.addr,
            args.metrics_addr.as_deref(),
            tracer,
            ShardCoordinator::rounds_run,
        );
    } else {
        let service = SchedulerService::new(ClusterTopology::paper_cluster(), args.config.clone())
            .unwrap_or_else(|e| fail(e));
        serve(
            service,
            &args.addr,
            args.metrics_addr.as_deref(),
            tracer,
            SchedulerService::rounds_run,
        );
    }
}
