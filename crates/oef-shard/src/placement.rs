//! Pluggable placement of new tenants and hosts onto shards.
//!
//! The coordinator consults a [`ShardPlacement`] strategy exactly twice per
//! object lifetime — when a `TenantJoin` or `AddHost` command arrives and no
//! handle exists yet to route by.  Everything afterwards routes by the shard
//! index packed into the handle, so the strategy never has to remember what
//! it placed where.
//!
//! Strategies must be deterministic functions of `(their own cursor, the
//! observed shard loads)`: the cursor travels inside the federated snapshot,
//! which is what lets a restored coordinator place the *next* tenant on the
//! same shard the original would have (restart equivalence across the shard
//! boundary).

/// Load summary of one shard, as observed at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Tenants currently registered on the shard.
    pub tenants: usize,
    /// Hosts currently owned by the shard.
    pub hosts: usize,
    /// GPU devices currently owned by the shard.
    pub total_devices: usize,
}

/// A strategy choosing the shard for objects that do not have a handle yet.
///
/// `loads` always holds one entry per shard, indexed by shard id, and is
/// never empty.  Implementations return a shard index `< loads.len()`.
pub trait ShardPlacement: Send {
    /// Wire name of the strategy (used in snapshots and `--placement`).
    fn name(&self) -> &'static str;

    /// Shard for a joining tenant.
    fn place_tenant(&mut self, loads: &[ShardLoad]) -> usize;

    /// Shard for a new host.
    fn place_host(&mut self, loads: &[ShardLoad]) -> usize;

    /// Opaque strategy state carried through federated snapshots; stateless
    /// strategies return 0.
    fn cursor(&self) -> u64 {
        0
    }

    /// Restores the state captured by [`ShardPlacement::cursor`].
    fn restore_cursor(&mut self, _cursor: u64) {}
}

/// Least-loaded placement: tenants go to the shard with the fewest tenants,
/// hosts to the shard with the fewest devices; ties break toward the lowest
/// shard index.  Stateless, so restart equivalence is free.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl ShardPlacement for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place_tenant(&mut self, loads: &[ShardLoad]) -> usize {
        min_by_key(loads, |l| l.tenants)
    }

    fn place_host(&mut self, loads: &[ShardLoad]) -> usize {
        min_by_key(loads, |l| l.total_devices)
    }
}

/// Round-robin placement: a single cursor walks the shards for tenants and
/// hosts alike, ignoring load.  The cursor is snapshot state.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    cursor: u64,
}

impl RoundRobin {
    fn next(&mut self, n: usize) -> usize {
        let shard = (self.cursor % n as u64) as usize;
        self.cursor += 1;
        shard
    }
}

impl ShardPlacement for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place_tenant(&mut self, loads: &[ShardLoad]) -> usize {
        self.next(loads.len())
    }

    fn place_host(&mut self, loads: &[ShardLoad]) -> usize {
        self.next(loads.len())
    }

    fn cursor(&self) -> u64 {
        self.cursor
    }

    fn restore_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }
}

/// Builds a boxed placement strategy from its wire name (`least-loaded`,
/// `round-robin`).
pub fn placement_from_name(name: &str) -> Option<Box<dyn ShardPlacement>> {
    match name {
        "least-loaded" => Some(Box::new(LeastLoaded)),
        "round-robin" => Some(Box::<RoundRobin>::default()),
        _ => None,
    }
}

fn min_by_key(loads: &[ShardLoad], key: impl Fn(&ShardLoad) -> usize) -> usize {
    loads
        .iter()
        .enumerate()
        .min_by_key(|(i, l)| (key(l), *i))
        .map(|(i, _)| i)
        .expect("coordinator always has at least one shard")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(tenants: usize, hosts: usize, total_devices: usize) -> ShardLoad {
        ShardLoad {
            tenants,
            hosts,
            total_devices,
        }
    }

    #[test]
    fn least_loaded_picks_emptiest_with_low_index_ties() {
        let mut p = LeastLoaded;
        let loads = [load(3, 2, 8), load(1, 2, 8), load(1, 2, 8)];
        assert_eq!(p.place_tenant(&loads), 1, "tie breaks to the lower index");
        let loads = [load(0, 2, 8), load(0, 1, 4), load(0, 3, 12)];
        assert_eq!(p.place_host(&loads), 1, "hosts go where devices are scarce");
    }

    #[test]
    fn round_robin_walks_and_restores_its_cursor() {
        let mut p = RoundRobin::default();
        let loads = [load(0, 0, 0); 3];
        assert_eq!(
            [
                p.place_tenant(&loads),
                p.place_tenant(&loads),
                p.place_host(&loads),
                p.place_tenant(&loads)
            ],
            [0, 1, 2, 0]
        );
        let cursor = p.cursor();
        let mut q = RoundRobin::default();
        q.restore_cursor(cursor);
        assert_eq!(
            q.place_tenant(&loads),
            p.place_tenant(&loads),
            "restored cursor continues the identical sequence"
        );
    }

    #[test]
    fn names_resolve() {
        assert_eq!(
            placement_from_name("least-loaded").unwrap().name(),
            "least-loaded"
        );
        assert_eq!(
            placement_from_name("round-robin").unwrap().name(),
            "round-robin"
        );
        assert!(placement_from_name("random").is_none());
    }
}
