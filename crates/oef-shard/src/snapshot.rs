//! Federated (v5) snapshots: per-shard v2 snapshots plus everything the
//! router itself owns.
//!
//! A sharded daemon is N independent schedulers behind one router, so its
//! durable state is exactly N independent v2 [`oef_service::ServiceSnapshot`]s
//! — each shard's snapshot is bit-for-bit what that shard would have written
//! as an unsharded daemon — plus the router's own state: the coordinator
//! round counter, the placement strategy's cursor, the **handle-forwarding
//! table** (old handle → live handle, one entry per migration not yet retired
//! by its tenant leaving) and the **rebalancer configuration**.  Restoring
//! the envelope therefore reproduces not only every shard's allocations but
//! also where the next tenant lands, which old handles still route, and what
//! the next `Rebalance` pass plans — restart equivalence across a migration
//! straddling the snapshot boundary.  Since v5 the envelope also records the
//! **journal sequence number** the snapshot covers, so a write-ahead journal
//! (`oef-journal`) replays exactly the commands the snapshot does not.
//!
//! **Version history.**  v2 is a single-shard [`oef_service::ServiceSnapshot`]
//! (still the format of unsharded daemons); v3 was PR 4's envelope without
//! forwarding or rebalancer state; v4 added those but predates the journal
//! epoch; v5 is this envelope.  `oef-servicectl migrate-snapshot` wraps a v2
//! snapshot into a single-shard v5 envelope ([`wrap_v2_snapshot`]) and
//! upgrades v3/v4 envelopes in place ([`upgrade_v3_snapshot`],
//! [`upgrade_v4_snapshot`] — missing state starts at its defaults: an empty
//! forwarding table, the default rebalancer, journal sequence 0, which is
//! exactly the state those federations were in).  v1 remains unmigratable and
//! is refused with a structured error.

use oef_rebalance::RebalancerConfig;
use serde::{Deserialize, Serialize};

/// Version stamp of the federated envelope.
pub const FEDERATED_SNAPSHOT_VERSION: u32 = 5;

/// Serialized state of the placement strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementState {
    /// Strategy wire name (see `placement_from_name`).
    pub strategy: String,
    /// Opaque strategy cursor (0 for stateless strategies).
    pub cursor: u64,
}

/// One handle-forwarding edge: a handle retired by a migration and the
/// handle that replaced it (itself possibly retired by a later migration —
/// lookups chase the chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingEntry {
    /// The retired handle a client may still hold.
    pub from: u64,
    /// The handle it forwards to.
    pub to: u64,
}

/// The serialized form of a `ShardCoordinator`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedSnapshot {
    /// Envelope version ([`FEDERATED_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Coordinator rounds completed at the moment of the snapshot.
    pub round: usize,
    /// Last journal sequence number this snapshot covers (0 when no journal
    /// is configured): replay starts at `journal_seq + 1`.
    pub journal_seq: u64,
    /// Placement strategy and its cursor.
    pub placement: PlacementState,
    /// Handle-forwarding table, sorted by `from` for a canonical encoding.
    pub forwarding: Vec<ForwardingEntry>,
    /// Rebalancer configuration (policy, threshold, move cap, load weights).
    pub rebalancer: RebalancerConfig,
    /// One v2 snapshot object per shard, in shard-index order.  Kept as raw
    /// JSON values so each entry round-trips through the unsharded restore
    /// path (and its full validation) unchanged.
    pub shards: Vec<serde::Value>,
}

/// Errors wrapping or upgrading snapshots into a v5 envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateError {
    /// The input was not a valid snapshot of the expected version.
    BadSnapshot(String),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::BadSnapshot(reason) => write!(f, "bad snapshot: {reason}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// Wraps a v2 service snapshot into a single-shard v5 envelope (shard 0, so
/// every handle in the snapshot keeps its exact wire value).  The forwarding
/// table starts empty — an unsharded daemon never migrated anything — and
/// the rebalancer at its defaults.
///
/// The input is fully validated by the unsharded restore path first — a
/// corrupt v2 snapshot is refused here, not at some later daemon start.
///
/// # Errors
///
/// Fails when the input does not parse, carries the wrong version, or fails
/// any of the v2 restore validations.
pub fn wrap_v2_snapshot(v2_json: &str) -> Result<FederatedSnapshot, MigrateError> {
    // Full validation: identity maps, topology invariants, policy name.
    oef_service::SchedulerService::from_snapshot_json(v2_json)
        .map_err(|e| MigrateError::BadSnapshot(e.to_string()))?;
    let value: serde::Value =
        serde_json::from_str(v2_json).map_err(|e| MigrateError::BadSnapshot(e.to_string()))?;
    let round = value
        .get("round")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| MigrateError::BadSnapshot("no numeric `round` field".to_string()))?;
    Ok(FederatedSnapshot {
        version: FEDERATED_SNAPSHOT_VERSION,
        round: round as usize,
        journal_seq: 0,
        placement: PlacementState {
            strategy: "least-loaded".to_string(),
            cursor: 0,
        },
        forwarding: Vec::new(),
        rebalancer: RebalancerConfig::default(),
        shards: vec![value],
    })
}

/// Upgrades a v3 federated envelope (PR 4's layout: no forwarding table, no
/// rebalancer state) to v5.  A v3 federation never migrated a tenant nor
/// journaled a command, so the faithful upgrade is an empty forwarding table,
/// the default rebalancer configuration and journal sequence 0; round,
/// placement cursor and every per-shard snapshot pass through unchanged
/// (each re-validated through the full v2 restore path).
///
/// # Errors
///
/// Fails when the input does not parse, is not version 3, or any shard entry
/// fails v2 validation.
pub fn upgrade_v3_snapshot(v3_json: &str) -> Result<FederatedSnapshot, MigrateError> {
    let value: serde::Value =
        serde_json::from_str(v3_json).map_err(|e| MigrateError::BadSnapshot(e.to_string()))?;
    match value.get("version").and_then(serde::Value::as_u64) {
        Some(3) => {}
        Some(v) => {
            return Err(MigrateError::BadSnapshot(format!(
                "expected a v3 federated envelope, found version {v}"
            )));
        }
        None => {
            return Err(MigrateError::BadSnapshot(
                "snapshot has no numeric `version` field".to_string(),
            ));
        }
    }
    let round = value
        .get("round")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| MigrateError::BadSnapshot("no numeric `round` field".to_string()))?;
    let placement = value
        .get("placement")
        .ok_or_else(|| MigrateError::BadSnapshot("no `placement` field".to_string()))
        .and_then(|p| {
            PlacementState::deserialize(p).map_err(|e| MigrateError::BadSnapshot(e.to_string()))
        })?;
    let shards = value
        .get("shards")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| MigrateError::BadSnapshot("no `shards` array".to_string()))?;
    if shards.is_empty() {
        return Err(MigrateError::BadSnapshot(
            "v3 envelope holds no shards".to_string(),
        ));
    }
    for (i, entry) in shards.iter().enumerate() {
        let json = serde_json::to_string(entry)
            .map_err(|e| MigrateError::BadSnapshot(format!("shard {i}: {e}")))?;
        oef_service::SchedulerService::from_snapshot_json(&json)
            .map_err(|e| MigrateError::BadSnapshot(format!("shard {i}: {e}")))?;
    }
    Ok(FederatedSnapshot {
        version: FEDERATED_SNAPSHOT_VERSION,
        round: round as usize,
        journal_seq: 0,
        placement,
        forwarding: Vec::new(),
        rebalancer: RebalancerConfig::default(),
        shards: shards.to_vec(),
    })
}

/// Upgrades a v4 federated envelope (PR 5's layout: forwarding table and
/// rebalancer state, but no journal sequence) to v5.  A v4 federation never
/// journaled a command, so the faithful upgrade stamps journal sequence 0 —
/// everything else passes through unchanged (each shard re-validated through
/// the full v2 restore path).
///
/// # Errors
///
/// Fails when the input does not parse, is not version 4, or any shard entry
/// fails v2 validation.
pub fn upgrade_v4_snapshot(v4_json: &str) -> Result<FederatedSnapshot, MigrateError> {
    let value: serde::Value =
        serde_json::from_str(v4_json).map_err(|e| MigrateError::BadSnapshot(e.to_string()))?;
    match value.get("version").and_then(serde::Value::as_u64) {
        Some(4) => {}
        Some(v) => {
            return Err(MigrateError::BadSnapshot(format!(
                "expected a v4 federated envelope, found version {v}"
            )));
        }
        None => {
            return Err(MigrateError::BadSnapshot(
                "snapshot has no numeric `version` field".to_string(),
            ));
        }
    }
    let round = value
        .get("round")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| MigrateError::BadSnapshot("no numeric `round` field".to_string()))?;
    let placement = value
        .get("placement")
        .ok_or_else(|| MigrateError::BadSnapshot("no `placement` field".to_string()))
        .and_then(|p| {
            PlacementState::deserialize(p).map_err(|e| MigrateError::BadSnapshot(e.to_string()))
        })?;
    let forwarding = value
        .get("forwarding")
        .ok_or_else(|| MigrateError::BadSnapshot("no `forwarding` field".to_string()))
        .and_then(|f| {
            Vec::<ForwardingEntry>::deserialize(f)
                .map_err(|e| MigrateError::BadSnapshot(e.to_string()))
        })?;
    let rebalancer = value
        .get("rebalancer")
        .ok_or_else(|| MigrateError::BadSnapshot("no `rebalancer` field".to_string()))
        .and_then(|r| {
            RebalancerConfig::deserialize(r).map_err(|e| MigrateError::BadSnapshot(e.to_string()))
        })?;
    let shards = value
        .get("shards")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| MigrateError::BadSnapshot("no `shards` array".to_string()))?;
    if shards.is_empty() {
        return Err(MigrateError::BadSnapshot(
            "v4 envelope holds no shards".to_string(),
        ));
    }
    for (i, entry) in shards.iter().enumerate() {
        let json = serde_json::to_string(entry)
            .map_err(|e| MigrateError::BadSnapshot(format!("shard {i}: {e}")))?;
        oef_service::SchedulerService::from_snapshot_json(&json)
            .map_err(|e| MigrateError::BadSnapshot(format!("shard {i}: {e}")))?;
    }
    Ok(FederatedSnapshot {
        version: FEDERATED_SNAPSHOT_VERSION,
        round: round as usize,
        journal_seq: 0,
        placement,
        forwarding,
        rebalancer,
        shards: shards.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oef_cluster::ClusterTopology;
    use oef_service::{Command, Response, SchedulerService, ServiceConfig};

    fn v2_snapshot() -> String {
        let mut service =
            SchedulerService::new(ClusterTopology::paper_cluster(), ServiceConfig::default())
                .unwrap();
        service.apply(
            Command::TenantJoin {
                name: "alice".into(),
                weight: 1,
                speedup: vec![1.0, 1.2, 1.4],
            },
            0,
        );
        service.apply(Command::Tick, 0);
        match service.apply(Command::Snapshot, 0) {
            Response::Snapshot { snapshot } => snapshot,
            other => panic!("snapshot failed: {other:?}"),
        }
    }

    /// A v3 envelope as PR 4 wrote it: no forwarding, no rebalancer.
    fn v3_envelope() -> String {
        format!(
            "{{\"version\":3,\"round\":1,\"placement\":{{\"strategy\":\"round-robin\",\
             \"cursor\":5}},\"shards\":[{}]}}",
            v2_snapshot()
        )
    }

    /// A v4 envelope as PR 5 wrote it: forwarding and rebalancer state, but
    /// no journal sequence.
    fn v4_envelope() -> String {
        let rebalancer = serde_json::to_string(&RebalancerConfig::default()).unwrap();
        format!(
            "{{\"version\":4,\"round\":2,\"placement\":{{\"strategy\":\"round-robin\",\
             \"cursor\":7}},\"forwarding\":[{{\"from\":72057594037927937,\"to\":2}}],\
             \"rebalancer\":{rebalancer},\"shards\":[{}]}}",
            v2_snapshot()
        )
    }

    #[test]
    fn envelope_round_trips_through_json() {
        let mut wrapped = wrap_v2_snapshot(&v2_snapshot()).unwrap();
        wrapped.forwarding.push(ForwardingEntry {
            from: (1u64 << 56) | 1,
            to: 2,
        });
        assert_eq!(wrapped.version, FEDERATED_SNAPSHOT_VERSION);
        assert_eq!(wrapped.round, 1);
        assert_eq!(wrapped.shards.len(), 1);
        let json = serde_json::to_string(&wrapped).unwrap();
        let back: FederatedSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wrapped);
    }

    #[test]
    fn v3_envelopes_upgrade_preserving_round_and_cursor() {
        let upgraded = upgrade_v3_snapshot(&v3_envelope()).unwrap();
        assert_eq!(upgraded.version, FEDERATED_SNAPSHOT_VERSION);
        assert_eq!(upgraded.round, 1);
        assert_eq!(upgraded.placement.strategy, "round-robin");
        assert_eq!(upgraded.placement.cursor, 5);
        assert!(upgraded.forwarding.is_empty(), "v3 never migrated");
        assert_eq!(upgraded.rebalancer, RebalancerConfig::default());
        assert_eq!(upgraded.shards.len(), 1);
    }

    #[test]
    fn v4_envelopes_upgrade_preserving_forwarding_and_rebalancer() {
        let upgraded = upgrade_v4_snapshot(&v4_envelope()).unwrap();
        assert_eq!(upgraded.version, FEDERATED_SNAPSHOT_VERSION);
        assert_eq!(upgraded.round, 2);
        assert_eq!(upgraded.journal_seq, 0, "v4 never journaled");
        assert_eq!(upgraded.placement.cursor, 7);
        assert_eq!(
            upgraded.forwarding,
            vec![ForwardingEntry {
                from: (1u64 << 56) | 1,
                to: 2,
            }],
            "the forwarding table must survive the upgrade verbatim"
        );
        assert_eq!(upgraded.rebalancer, RebalancerConfig::default());
        assert_eq!(upgraded.shards.len(), 1);
    }

    #[test]
    fn v4_upgrade_refuses_wrong_versions_and_corrupt_shards() {
        let err = upgrade_v4_snapshot(&v2_snapshot()).unwrap_err();
        assert!(matches!(err, MigrateError::BadSnapshot(_)));
        let err = upgrade_v4_snapshot(&v3_envelope()).unwrap_err();
        assert!(matches!(err, MigrateError::BadSnapshot(_)));
        let corrupt = v4_envelope().replace("\"version\":2", "\"version\":7");
        assert_ne!(corrupt, v4_envelope(), "fixture must hit the shard entry");
        assert!(matches!(
            upgrade_v4_snapshot(&corrupt).unwrap_err(),
            MigrateError::BadSnapshot(_)
        ));
    }

    #[test]
    fn v3_upgrade_refuses_wrong_versions_and_corrupt_shards() {
        // A v2 snapshot is not a v3 envelope.
        let err = upgrade_v3_snapshot(&v2_snapshot()).unwrap_err();
        assert!(matches!(err, MigrateError::BadSnapshot(_)));
        // A corrupt shard entry fails the per-shard v2 validation.
        let corrupt = v3_envelope().replace("\"version\":2", "\"version\":7");
        assert!(matches!(
            upgrade_v3_snapshot(&corrupt).unwrap_err(),
            MigrateError::BadSnapshot(_)
        ));
    }

    #[test]
    fn corrupt_v2_input_is_refused() {
        let err = wrap_v2_snapshot("{\"version\":2}").unwrap_err();
        assert!(matches!(err, MigrateError::BadSnapshot(_)));
        let err = wrap_v2_snapshot("not json").unwrap_err();
        assert!(matches!(err, MigrateError::BadSnapshot(_)));
        // v1 snapshots stay dead: the wrapper refuses them the same way the
        // unsharded daemon does, instead of laundering them into a v5 shell.
        let v1 = v2_snapshot().replace("\"version\":2", "\"version\":1");
        assert!(matches!(
            wrap_v2_snapshot(&v1).unwrap_err(),
            MigrateError::BadSnapshot(_)
        ));
    }
}
