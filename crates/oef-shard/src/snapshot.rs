//! Federated (v3) snapshots: an envelope of per-shard v2 snapshots plus the
//! shard map.
//!
//! A sharded daemon is N independent schedulers behind one router, so its
//! durable state is exactly N independent v2 [`oef_service::ServiceSnapshot`]s
//! — each shard's snapshot is bit-for-bit what that shard would have written
//! as an unsharded daemon — plus the little state the router itself owns: the
//! shard count (implicit in the array), the coordinator round counter and the
//! placement strategy's cursor.  Restoring the envelope therefore reproduces
//! not only every shard's allocations but also where the *next* tenant will
//! be placed, which is what restart equivalence means across a shard
//! boundary.
//!
//! v2 snapshots remain the format of unsharded daemons; `oef-servicectl
//! migrate-snapshot` wraps one into a single-shard v3 envelope (see
//! [`wrap_v2_snapshot`]), closing the old "versioning is reject-only" gap
//! without widening the unsharded daemon's restore surface.

use serde::{Deserialize, Serialize};

/// Version stamp of the federated envelope.  v2 is a single-shard
/// [`oef_service::ServiceSnapshot`]; v3 is this envelope.
pub const FEDERATED_SNAPSHOT_VERSION: u32 = 3;

/// Serialized state of the placement strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementState {
    /// Strategy wire name (see `placement_from_name`).
    pub strategy: String,
    /// Opaque strategy cursor (0 for stateless strategies).
    pub cursor: u64,
}

/// The serialized form of a `ShardCoordinator`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedSnapshot {
    /// Envelope version ([`FEDERATED_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Coordinator rounds completed at the moment of the snapshot.
    pub round: usize,
    /// Placement strategy and its cursor.
    pub placement: PlacementState,
    /// One v2 snapshot object per shard, in shard-index order.  Kept as raw
    /// JSON values so each entry round-trips through the unsharded restore
    /// path (and its full validation) unchanged.
    pub shards: Vec<serde::Value>,
}

/// Errors wrapping a v2 snapshot into a v3 envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateError {
    /// The input was not a valid v2 snapshot.
    BadSnapshot(String),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::BadSnapshot(reason) => write!(f, "bad v2 snapshot: {reason}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// Wraps a v2 service snapshot into a single-shard v3 envelope (shard 0, so
/// every handle in the snapshot keeps its exact wire value).
///
/// The input is fully validated by the unsharded restore path first — a
/// corrupt v2 snapshot is refused here, not at some later daemon start.
///
/// # Errors
///
/// Fails when the input does not parse, carries the wrong version, or fails
/// any of the v2 restore validations.
pub fn wrap_v2_snapshot(v2_json: &str) -> Result<FederatedSnapshot, MigrateError> {
    // Full validation: identity maps, topology invariants, policy name.
    oef_service::SchedulerService::from_snapshot_json(v2_json)
        .map_err(|e| MigrateError::BadSnapshot(e.to_string()))?;
    let value: serde::Value =
        serde_json::from_str(v2_json).map_err(|e| MigrateError::BadSnapshot(e.to_string()))?;
    let round = value
        .get("round")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| MigrateError::BadSnapshot("no numeric `round` field".to_string()))?;
    Ok(FederatedSnapshot {
        version: FEDERATED_SNAPSHOT_VERSION,
        round: round as usize,
        placement: PlacementState {
            strategy: "least-loaded".to_string(),
            cursor: 0,
        },
        shards: vec![value],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oef_cluster::ClusterTopology;
    use oef_service::{Command, Response, SchedulerService, ServiceConfig};

    fn v2_snapshot() -> String {
        let mut service =
            SchedulerService::new(ClusterTopology::paper_cluster(), ServiceConfig::default())
                .unwrap();
        service.apply(
            Command::TenantJoin {
                name: "alice".into(),
                weight: 1,
                speedup: vec![1.0, 1.2, 1.4],
            },
            0,
        );
        service.apply(Command::Tick, 0);
        match service.apply(Command::Snapshot, 0) {
            Response::Snapshot { snapshot } => snapshot,
            other => panic!("snapshot failed: {other:?}"),
        }
    }

    #[test]
    fn envelope_round_trips_through_json() {
        let wrapped = wrap_v2_snapshot(&v2_snapshot()).unwrap();
        assert_eq!(wrapped.version, FEDERATED_SNAPSHOT_VERSION);
        assert_eq!(wrapped.round, 1);
        assert_eq!(wrapped.shards.len(), 1);
        let json = serde_json::to_string(&wrapped).unwrap();
        let back: FederatedSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wrapped);
    }

    #[test]
    fn corrupt_v2_input_is_refused() {
        let err = wrap_v2_snapshot("{\"version\":2}").unwrap_err();
        assert!(matches!(err, MigrateError::BadSnapshot(_)));
        let err = wrap_v2_snapshot("not json").unwrap_err();
        assert!(matches!(err, MigrateError::BadSnapshot(_)));
        // v1 snapshots stay dead: the wrapper refuses them the same way the
        // unsharded daemon does, instead of laundering them into a v3 shell.
        let v1 = v2_snapshot().replace("\"version\":2", "\"version\":1");
        assert!(matches!(
            wrap_v2_snapshot(&v1).unwrap_err(),
            MigrateError::BadSnapshot(_)
        ));
    }
}
