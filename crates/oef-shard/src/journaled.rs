//! Write-ahead journaling around a [`ShardCoordinator`].
//!
//! [`Journaled`] wraps a coordinator with an `oef-journal` command log and a
//! periodically-checkpointed snapshot, turning the daemon's proven
//! determinism into a durability story: every mutating command is appended
//! (and group-committed) *before* it is applied, so a crash at any moment
//! recovers by restoring `snapshot.json` and replaying the journal tail —
//! [`Journaled::recover`] reproduces the pre-crash state exactly, because
//! replaying the same commands against the same snapshot is the same
//! computation.
//!
//! Three commands need care:
//!
//! * **Read-only commands** (`Status`, `Metrics`, `Snapshot`) are never
//!   journaled — they mutate nothing.
//! * **`Rebalance`** is journaled *by its effects*: the pass plans from the
//!   per-shard solve-latency EWMA, a wall-clock signal that replay cannot
//!   reproduce, so instead of logging `Rebalance` the wrapper drains the
//!   coordinator's trail of attempted moves and logs each as a
//!   `MigrateTenant` (attempts, not successes: even a refused move mutates —
//!   it re-mints the tenant on its source shard and adds a rollback
//!   forwarding edge).  This is the one apply-before-journal exception; the
//!   worker is single-threaded, so no later command can overtake the trail.
//! * **Commands refused while shutting down** are not journaled at all — a
//!   recovered coordinator is *not* shutting down, so replaying them would
//!   apply commands the live daemon refused.
//!
//! Every `--compact-every` journaled commands the wrapper **checkpoints**:
//! syncs the journal, writes the federated snapshot atomically (temp file +
//! fsync + rename, via [`oef_journal::PendingFile`]) and deletes every
//! journal segment the snapshot covers.  The v5 envelope records the journal
//! sequence number it covers, so replay starts exactly where the snapshot
//! ends; segments a crashed compaction failed to delete are skipped as stale
//! on recovery and removed by the next checkpoint.  [`CrashPoint`]s can be
//! armed ([`Journaled::with_faults`]) to stop the pipeline dead at the nasty
//! moments — the crash-recovery e2e suite drives every one of them.

use crate::coordinator::ShardCoordinator;
use oef_attrib::AttributionRegistry;
use oef_core::sharded;
use oef_journal::{
    CrashPoint, FaultInjector, FaultPlan, Journal, JournalConfig, PendingFile, RecoveryReport,
};
use oef_obs::{Counter, Gauge, Histogram, Registry, DEFAULT_LATENCY_BUCKETS};
use oef_service::{Command, CommandHandler, ErrorCode, Response};
use oef_trace::Tracer;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File name of the checkpoint snapshot inside the journal directory.
const SNAPSHOT_FILE: &str = "snapshot.json";

/// Durability knobs of a [`Journaled`] coordinator.
#[derive(Debug, Clone, Copy)]
pub struct JournalOptions {
    /// Group-commit batch: fsync the journal after every n-th append
    /// (1 = synchronous, 0 = never explicitly; see `oef-journal`).
    pub fsync_every: u64,
    /// Checkpoint (snapshot + compact the journal) after this many journaled
    /// commands (0 = only on shutdown).
    pub compact_every: u64,
    /// Records per journal segment file before rolling.
    pub segment_records: u64,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions {
            fsync_every: 1,
            compact_every: 4096,
            segment_records: 1024,
        }
    }
}

/// What [`Journaled::recover`] did, for operator logs.
#[derive(Debug, Clone, Copy)]
pub struct RecoverySummary {
    /// Journal sequence number the snapshot covered (replay started after it).
    pub base_seq: u64,
    /// Commands replayed from the journal tail.
    pub replayed: usize,
    /// Stale records skipped (left behind by an interrupted compaction).
    pub stale_skipped: usize,
    /// Bytes truncated off torn or corrupt segment tails.
    pub torn_bytes: u64,
    /// Records dropped past a group-commit sequence gap.
    pub gap_dropped: usize,
    /// Coordinator rounds after replay.
    pub rounds: usize,
}

impl RecoverySummary {
    fn new(base_seq: u64, report: RecoveryReport, rounds: usize) -> Self {
        RecoverySummary {
            base_seq,
            replayed: report.replayed,
            stale_skipped: report.stale_skipped,
            torn_bytes: report.torn_bytes,
            gap_dropped: report.gap_dropped,
            rounds,
        }
    }
}

/// An armed [`CrashPoint`] fired: the harness must treat the process as
/// dead — drop the [`Journaled`] without further writes and recover.
#[derive(Debug)]
pub struct Crashed;

/// Journal exposition cells, mirroring [`Journal::stats`] after each
/// command (the journal keeps plain integers; these are the `Arc`-backed
/// cells the `/metrics` listener reads).
#[derive(Debug)]
struct JournalObs {
    appends: Counter,
    fsyncs: Counter,
    appended_bytes: Counter,
    truncated_bytes: Gauge,
    replayed: Gauge,
    journal_seq: Gauge,
    /// Wall-clock latency of individual journal appends and fsyncs, with
    /// observations pinned to the active trace as exemplars — a slow-commit
    /// spike in a dashboard jumps straight to the command that paid it.
    append_hist: Histogram,
    sync_hist: Histogram,
}

/// Observes `secs`, pinning it to the active sampled trace (if any) as an
/// OpenMetrics exemplar on its histogram bucket.
fn observe_latency(hist: &Histogram, secs: f64) {
    match oef_trace::current_trace_id() {
        Some(id) => hist.observe_with_exemplar(secs, &oef_trace::format_id(id)),
        None => hist.observe(secs),
    }
}

/// A [`ShardCoordinator`] behind a write-ahead journal.  Implements
/// [`CommandHandler`], so `Server::spawn(journaled, addr)` serves the same
/// wire protocol with durability.
#[derive(Debug)]
pub struct Journaled {
    inner: ShardCoordinator,
    journal: Journal,
    snapshot_path: PathBuf,
    compact_every: u64,
    since_compact: u64,
    faults: FaultInjector,
    /// Commands replayed from the journal tail when this instance was
    /// recovered (0 for a freshly created journal).
    replayed_on_recovery: u64,
    obs: Option<JournalObs>,
}

impl Journaled {
    /// Starts journaling `inner` in a fresh directory: writes the initial
    /// checkpoint snapshot (atomically) and creates the journal lanes, one
    /// per shard.
    ///
    /// # Errors
    ///
    /// Fails if `dir` already holds a journal (recover instead — creating
    /// over history could silently drop it) or on any I/O failure.
    pub fn create(
        mut inner: ShardCoordinator,
        dir: &Path,
        options: JournalOptions,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already exists; recover from it instead of creating over it",
                    snapshot_path.display()
                ),
            ));
        }
        // This journal's sequence numbers start at 1, whatever any restored
        // envelope claimed about a previous journal's epoch.
        inner.set_journal_seq(0);
        let journal = Journal::create(dir, journal_config(&inner, options))?;
        let mut journaled = Journaled {
            inner,
            journal,
            snapshot_path,
            compact_every: options.compact_every,
            since_compact: 0,
            faults: FaultInjector::none(),
            replayed_on_recovery: 0,
            obs: None,
        };
        let snapshot = journaled.snapshot_json()?;
        oef_journal::atomic_write(&journaled.snapshot_path, snapshot.as_bytes())?;
        Ok(journaled)
    }

    /// Recovers a journaled coordinator from `dir`: restores
    /// `snapshot.json`, opens the journal (repairing torn tails), and
    /// replays every surviving command after the snapshot's sequence number.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot is missing or invalid, or on I/O failures.
    /// A damaged journal *tail* is not an error — it is truncated at the
    /// last valid record, exactly what a crash mid-append leaves behind.
    pub fn recover(dir: &Path, options: JournalOptions) -> io::Result<(Self, RecoverySummary)> {
        Self::recover_with(dir, options, None)
    }

    /// Like [`Self::recover`], with replay tracing: when a sampling `tracer`
    /// is given, each replayed command is recorded as a trace marked
    /// `replay = true` under a *freshly minted* id.  The journal does not
    /// persist trace context on purpose — a replayed command must never be
    /// re-attributed to the trace that originally carried it (that trace's
    /// timings belong to the pre-crash process).
    ///
    /// # Errors
    ///
    /// See [`Self::recover`].
    pub fn recover_with(
        dir: &Path,
        options: JournalOptions,
        tracer: Option<&Tracer>,
    ) -> io::Result<(Self, RecoverySummary)> {
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let snapshot = std::fs::read_to_string(&snapshot_path)?;
        let mut inner = ShardCoordinator::from_federated_json(&snapshot).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", snapshot_path.display()),
            )
        })?;
        let base_seq = inner.journal_seq();
        let (journal, records, report) =
            Journal::open(dir, base_seq, journal_config(&inner, options))?;
        for record in &records {
            let command: Command =
                serde_json::from_str(std::str::from_utf8(&record.payload).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal record {} is not UTF-8: {e}", record.seq),
                    )
                })?)
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal record {} is not a command: {e}", record.seq),
                    )
                })?;
            // Replay applies commands, not their outcomes: a command the live
            // daemon refused is refused again here, identically (state and
            // command are both identical), so errors are expected data.
            match tracer {
                Some(t) => {
                    let root = command.name();
                    t.trace_replay(root, || inner.apply(command, 0));
                }
                None => {
                    inner.apply(command, 0);
                }
            }
            inner.set_journal_seq(record.seq);
        }
        let summary = RecoverySummary::new(base_seq, report, inner.rounds_run());
        Ok((
            Journaled {
                inner,
                journal,
                snapshot_path,
                compact_every: options.compact_every,
                since_compact: 0,
                faults: FaultInjector::none(),
                replayed_on_recovery: report.replayed as u64,
                obs: None,
            },
            summary,
        ))
    }

    /// Arms a scripted crash (test harness; see [`CrashPoint`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = FaultInjector::armed(plan);
        self
    }

    /// The wrapped coordinator.
    pub fn coordinator(&self) -> &ShardCoordinator {
        &self.inner
    }

    /// Coordinator rounds completed.
    pub fn rounds_run(&self) -> usize {
        self.inner.rounds_run()
    }

    /// Live journal segment files (tests observe compaction through this).
    pub fn segment_count(&self) -> usize {
        self.journal.segment_count()
    }

    /// Executes one command with full crash-injection plumbing.  An armed
    /// fault firing returns `Err(Crashed)`: the files are now exactly as a
    /// real crash at that point would leave them, and the caller must stop
    /// using this value.
    ///
    /// # Errors
    ///
    /// Only [`Crashed`] — journal I/O failures refuse the command with a
    /// structured [`Response::Error`] *without* applying it (write-ahead
    /// means no un-journaled mutation is ever visible).
    pub fn try_apply(&mut self, command: Command, queue_depth: usize) -> Result<Response, Crashed> {
        let result = self.try_apply_inner(command, queue_depth);
        self.refresh_journal_obs();
        result
    }

    fn try_apply_inner(
        &mut self,
        command: Command,
        queue_depth: usize,
    ) -> Result<Response, Crashed> {
        match command {
            // Read-only: nothing to journal.  `Metrics` is the coordinator's
            // report plus this wrapper's journal counters — the journal is
            // invisible to the inner coordinator.
            Command::Status | Command::Metrics | Command::Snapshot => {
                let mut response = self.inner.apply(command, queue_depth);
                if let Response::Metrics(report) = &mut response {
                    let stats = self.journal.stats();
                    report.journal_appends = stats.appends;
                    report.journal_fsyncs = stats.fsyncs;
                    report.journal_appended_bytes = stats.appended_bytes;
                    report.journal_truncated_bytes_on_recovery = stats.truncated_bytes_on_recovery;
                }
                Ok(response)
            }
            // The rebalance plan reads wall-clock solve latencies, so the
            // *plan* is not replayable; journal the executed trail instead
            // (apply-then-journal is safe on the single worker thread).
            Command::Rebalance => {
                let response = self.inner.apply(command, queue_depth);
                for (tenant, shard) in self.inner.drain_rebalance_trail() {
                    let journaled = self.journal_command(&Command::MigrateTenant { tenant, shard });
                    match journaled {
                        Ok(seq) => self.inner.set_journal_seq(seq),
                        Err(e) => {
                            // The moves already executed; losing their
                            // journal entries would make recovery diverge.
                            // Surface loudly — the reply reaches the caller,
                            // and the next checkpoint re-covers the state.
                            return Ok(Response::Error {
                                code: ErrorCode::Internal,
                                message: format!(
                                    "rebalance executed but journaling its moves failed: {e}; \
                                     state is ahead of the journal until the next checkpoint"
                                ),
                            });
                        }
                    }
                }
                self.maybe_checkpoint()?;
                Ok(response)
            }
            Command::Shutdown => {
                let response = self.inner.apply(command, queue_depth);
                // The queue drains and `on_shutdown` checkpoints after it;
                // sync eagerly anyway so even a kill between here and there
                // loses nothing.
                let _ = self.timed_sync();
                Ok(response)
            }
            command => {
                // A shutting-down coordinator refuses mutations; those
                // refusals must not be journaled (a recovered coordinator is
                // not shutting down and would apply them on replay).
                if self.inner.is_shutting_down() {
                    return Ok(self.inner.apply(command, queue_depth));
                }
                if self.faults.should_crash(CrashPoint::PreAppend) {
                    return Err(Crashed);
                }
                let seq = match self.journal_command(&command) {
                    Ok(seq) => seq,
                    Err(e) => {
                        // Write-ahead: if the append failed, the command must
                        // not be applied.
                        return Ok(Response::Error {
                            code: ErrorCode::Internal,
                            message: format!("journal append failed, command refused: {e}"),
                        });
                    }
                };
                if self.faults.should_crash(CrashPoint::PostAppendPreApply) {
                    let _ = self.timed_sync();
                    return Err(Crashed);
                }
                let response = self.inner.apply(command, queue_depth);
                self.inner.set_journal_seq(seq);
                self.maybe_checkpoint()?;
                Ok(response)
            }
        }
    }

    /// Serializes and appends one command, routing it to the lane of the
    /// shard its handle names (lane 0 for commands placed later or global
    /// ones).
    fn journal_command(&mut self, command: &Command) -> io::Result<u64> {
        let payload = serde_json::to_string(command)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let started = Instant::now();
        let result = self.journal.append(lane_of(command), payload.as_bytes());
        let elapsed = started.elapsed();
        oef_trace::profile::record("journal_append", elapsed.as_nanos() as u64);
        if let Some(obs) = &self.obs {
            observe_latency(&obs.append_hist, elapsed.as_secs_f64());
        }
        result
    }

    /// Syncs the journal, feeding the fsync latency to the always-on
    /// profiler and (once attached) the exemplar-linked sync histogram.
    fn timed_sync(&mut self) -> io::Result<()> {
        let started = Instant::now();
        let result = self.journal.sync();
        let elapsed = started.elapsed();
        oef_trace::profile::record("journal_sync", elapsed.as_nanos() as u64);
        if let Some(obs) = &self.obs {
            observe_latency(&obs.sync_hist, elapsed.as_secs_f64());
        }
        result
    }

    /// Forwards the shared solve-cost registry to the wrapped coordinator.
    pub fn attach_attribution(&mut self, attrib: &AttributionRegistry) {
        self.inner.attach_attribution(attrib);
    }

    fn maybe_checkpoint(&mut self) -> Result<(), Crashed> {
        self.since_compact += 1;
        if self.compact_every > 0 && self.since_compact >= self.compact_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Checkpoints now: syncs the journal, writes the snapshot atomically,
    /// compacts the journal down to segments the snapshot does not cover.
    ///
    /// I/O failures are logged and swallowed — a failed checkpoint only
    /// means recovery replays a longer tail; durability is never lost.
    ///
    /// # Errors
    ///
    /// Only [`Crashed`], from an armed [`CrashPoint::MidSnapshotWrite`] or
    /// [`CrashPoint::MidCompaction`].
    pub fn checkpoint(&mut self) -> Result<(), Crashed> {
        self.since_compact = 0;
        if let Err(e) = self.try_checkpoint() {
            match e {
                CheckpointError::Crashed => return Err(Crashed),
                CheckpointError::Io(e) => {
                    oef_trace::log_json(
                        "error",
                        "journal",
                        "checkpoint failed; journal keeps the full tail",
                        &[("error", &e.to_string())],
                    );
                }
            }
        }
        Ok(())
    }

    fn try_checkpoint(&mut self) -> Result<(), CheckpointError> {
        // The snapshot claims to cover `journal_seq`; everything up to it
        // must be durable before the claim is.
        self.timed_sync()?;
        let snapshot = self.snapshot_json()?;
        let mut pending = PendingFile::begin(&self.snapshot_path)?;
        pending.write_all(snapshot.as_bytes())?;
        if self.faults.should_crash(CrashPoint::MidSnapshotWrite) {
            // Dropping `pending` abandons the temp file: the previous
            // snapshot stays authoritative, the full tail replays.
            return Err(CheckpointError::Crashed);
        }
        pending.commit()?;
        if self.faults.should_crash(CrashPoint::MidCompaction) {
            // The new snapshot landed but stale segments survive; recovery
            // skips their records and the next checkpoint deletes them.
            return Err(CheckpointError::Crashed);
        }
        self.journal.compact(self.inner.journal_seq())?;
        Ok(())
    }

    fn snapshot_json(&mut self) -> io::Result<String> {
        // The direct path, not `apply(Command::Snapshot)`: the shutdown
        // checkpoint runs after the coordinator started refusing commands,
        // and checkpoints must not inflate the command metrics either.
        self.inner.snapshot_json().map_err(io::Error::other)
    }

    /// Mirrors the journal's plain integer counters into the exposition
    /// cells.  A handful of atomic stores after each command — and nothing
    /// at all while unattached.
    fn refresh_journal_obs(&self) {
        let Some(obs) = &self.obs else {
            return;
        };
        let stats = self.journal.stats();
        obs.appends.set(stats.appends);
        obs.fsyncs.set(stats.fsyncs);
        obs.appended_bytes.set(stats.appended_bytes);
        obs.truncated_bytes
            .set(stats.truncated_bytes_on_recovery as f64);
        obs.replayed.set(self.replayed_on_recovery as f64);
        obs.journal_seq.set(self.inner.journal_seq() as f64);
    }
}

enum CheckpointError {
    Crashed,
    Io(io::Error),
}

impl From<io::Error> for CheckpointError {
    fn from(value: io::Error) -> Self {
        CheckpointError::Io(value)
    }
}

impl CommandHandler for Journaled {
    fn apply(&mut self, command: Command, queue_depth: usize) -> Response {
        match self.try_apply(command, queue_depth) {
            Ok(response) => response,
            // Unreachable in production (faults are only armed by tests that
            // drive `try_apply` directly), but a structured reply beats a
            // panic if a harness ever serves an armed instance.
            Err(Crashed) => Response::Error {
                code: ErrorCode::Internal,
                message: "injected crash point fired".to_string(),
            },
        }
    }

    fn queue_capacity(&self) -> usize {
        self.inner.queue_capacity()
    }

    fn on_shutdown(&mut self) {
        // Clean shutdown never needs tail replay: flush the journal and
        // checkpoint so the snapshot covers everything.
        let _ = self.timed_sync();
        let _ = self.checkpoint();
    }

    fn attach_attribution(&mut self, attrib: &AttributionRegistry) {
        Journaled::attach_attribution(self, attrib);
    }

    fn attach_observability(&mut self, registry: &Registry) {
        self.inner.attach_observability(registry);
        self.obs = Some(JournalObs {
            appends: registry.counter(
                "oef_journal_appends_total",
                "Commands appended to the write-ahead journal.",
                &[],
            ),
            fsyncs: registry.counter(
                "oef_journal_fsyncs_total",
                "fsync calls issued by the journal (group commits and segment rolls).",
                &[],
            ),
            appended_bytes: registry.counter(
                "oef_journal_appended_bytes_total",
                "Bytes appended to the journal, frame headers included.",
                &[],
            ),
            truncated_bytes: registry.gauge(
                "oef_journal_truncated_bytes_on_recovery",
                "Bytes recovery truncated off torn or corrupt journal tails at open.",
                &[],
            ),
            replayed: registry.gauge(
                "oef_journal_replayed_records",
                "Commands replayed from the journal tail when this process recovered.",
                &[],
            ),
            journal_seq: registry.gauge(
                "oef_journal_seq",
                "Global sequence number of the last journaled-and-applied command.",
                &[],
            ),
            append_hist: registry.histogram(
                "oef_journal_append_seconds",
                "Wall-clock time of one write-ahead journal append.",
                &[],
                DEFAULT_LATENCY_BUCKETS,
            ),
            sync_hist: registry.histogram(
                "oef_journal_sync_seconds",
                "Wall-clock time of one journal fsync (group commits, rolls, checkpoints).",
                &[],
                DEFAULT_LATENCY_BUCKETS,
            ),
        });
        self.refresh_journal_obs();
    }
}

fn journal_config(inner: &ShardCoordinator, options: JournalOptions) -> JournalConfig {
    JournalConfig {
        lanes: inner.num_shards() as u32,
        fsync_every: options.fsync_every,
        segment_records: options.segment_records,
    }
}

/// Journal lane of a command: the shard its handle names, lane 0 for
/// commands without one (their shard is decided at apply time).  Lanes are
/// storage partitioning only — the global sequence number keeps replay
/// totally ordered.
fn lane_of(command: &Command) -> u32 {
    let handle = match command {
        Command::TenantLeave { tenant }
        | Command::UpdateSpeedups { tenant, .. }
        | Command::SubmitJob { tenant, .. }
        | Command::JobFinished { tenant, .. }
        | Command::MigrateTenant { tenant, .. } => *tenant,
        Command::RemoveHost { handle } => *handle,
        _ => return 0,
    };
    sharded::shard_of(handle) as u32
}
