//! The shard coordinator: N independent scheduler shards behind one wire
//! protocol.
//!
//! [`ShardCoordinator`] owns a vector of [`SchedulerService`] shards — each
//! with its own cluster state, allocation policy and warm-started solver
//! context — and routes the *unchanged* v2 wire protocol across them:
//!
//! * Commands that create identity (`TenantJoin`, `AddHost`) are placed by a
//!   pluggable [`ShardPlacement`] strategy; the reply's handle is tagged with
//!   the shard index in its high bits (see [`oef_core::sharded`]).
//! * Commands that carry a handle are routed by decoding those same bits —
//!   the coordinator keeps **no** tenant or host table of its own, so routing
//!   is O(1) and can never drift out of sync with the shards.  The one
//!   exception is the **forwarding table**: when a tenant migrates, its old
//!   handle maps to the re-minted one (chains compress on lookup), so every
//!   handle a client ever held keeps working across any number of moves.
//! * `MigrateTenant` moves one tenant's complete state — profile, jobs,
//!   rounding-deviation row — to another shard via
//!   [`oef_rebalance::TenantMigrator`]; `Rebalance` runs one pass of the
//!   online [`oef_rebalance::Rebalancer`] over the observed per-shard load
//!   (tenants, jobs, solve-latency EWMA) and executes the plan it returns.
//! * `Tick` fans out to every shard in parallel (`std::thread::scope`) and
//!   merges the per-shard round summaries; each shard's LP stays small enough
//!   to sit in the warm-start sweet spot while the solves overlap on separate
//!   cores.
//! * `Status` / `Metrics` aggregate across shards; `Snapshot` / `Restore`
//!   speak the federated v5 envelope (per-shard v2 snapshots + placement
//!   cursor + forwarding table + rebalancer config + the journal sequence
//!   number the snapshot covers).
//!
//! Shard 0 uses the identity handle encoding, so a single-shard coordinator
//! is wire-indistinguishable from an unsharded daemon.

use crate::placement::{ShardLoad, ShardPlacement};
use crate::snapshot::{
    FederatedSnapshot, ForwardingEntry, PlacementState, FEDERATED_SNAPSHOT_VERSION,
};
use oef_attrib::AttributionRegistry;
use oef_cluster::ClusterTopology;
use oef_core::sharded;
use oef_obs::{Counter, Gauge, GaugeFamily, Registry};
use oef_rebalance::{
    MigrateFailure, Rebalancer, RebalancerConfig, ShardObservation, TenantMigrator,
};
use oef_service::{
    Command, CommandHandler, ErrorCode, ExecutedMigration, MetricsReport, RebalanceReport,
    Response, RoundSummary, ServiceConfig, ServiceError, ServiceMetrics, ShardStatusEntry,
    StatusReport, TenantRoundSummary, PROTOCOL_VERSION,
};
use serde::Deserialize;
use std::collections::HashMap;
use std::time::Instant;

/// What a parsed v5 envelope yields: everything a coordinator restores.
struct ParsedFederation {
    shards: Vec<oef_service::SchedulerService>,
    placement: Box<dyn ShardPlacement>,
    rounds: usize,
    config: ServiceConfig,
    forwarding: HashMap<u64, u64>,
    rebalancer: Rebalancer,
    journal_seq: u64,
}

/// Smoothing factor of the per-shard solve-latency EWMA (weight of the
/// newest observation).
const EWMA_ALPHA: f64 = 0.3;

/// Coordinator-level exposition cells: front-door gauges plus federation
/// topology series.  The registry handle lets `Restore` re-attach shards it
/// rebuilt.
struct CoordObs {
    registry: Registry,
    queue_depth: Gauge,
    uptime: Gauge,
    shards: Gauge,
    forwarding_entries: Gauge,
    forwarding_depth: Gauge,
    migrated: Counter,
    solve_ewma: GaugeFamily,
    trace_dropped: Counter,
    log_dropped: Counter,
}

/// A federation of scheduler shards speaking the ordinary service protocol.
pub struct ShardCoordinator {
    shards: Vec<oef_service::SchedulerService>,
    placement: Box<dyn ShardPlacement>,
    /// Per-shard configuration template (every shard runs the same policy and
    /// limits; quotas apply *per shard*).
    config: ServiceConfig,
    /// Coordinator rounds: every `Tick` advances all shards by one round.
    rounds: usize,
    /// Old wire handle → newer wire handle, one entry per migration whose
    /// tenant has not left yet.  Lookups chase and compress chains
    /// ([`sharded::resolve_forwarded`]); entries are durable (snapshot state)
    /// because clients hold the old handles durably.
    forwarding: HashMap<u64, u64>,
    /// The online rebalancer (its config is snapshot state).
    rebalancer: Rebalancer,
    /// Migrations the last `Rebalance` pass *attempted* (tenant wire handle,
    /// target shard), in execution order — including refused attempts, which
    /// still mutate (a rejected install re-mints the tenant on its source
    /// shard and inserts a rollback forwarding edge).  A write-ahead journal
    /// drains this trail ([`ShardCoordinator::drain_rebalance_trail`]) and
    /// logs each attempt as a `MigrateTenant`, because the *plan* is not
    /// replayable: it reads the solve-latency EWMA, a wall-clock signal.
    rebalance_trail: Vec<(u64, usize)>,
    /// Sequence number of the last journaled command applied (0 without a
    /// journal); rides in the v5 envelope so replay starts where the
    /// snapshot ends.
    journal_seq: u64,
    /// Per-shard EWMA of round solve latency — the load signal shards cannot
    /// compute themselves (it is only meaningful relative to the fan-out).
    solve_ewma: Vec<f64>,
    /// Tenants moved between shards over this process's lifetime.
    migrated: u64,
    /// Coordinator-level registry: command counters plus the latency window
    /// of the parallel tick fan-out (critical path over the shards).
    metrics: ServiceMetrics,
    /// Exposition cells, present once attached to a registry.  Like
    /// `metrics` they describe this process and survive `Restore`.
    obs: Option<CoordObs>,
    /// Shared per-tenant solve-cost registry; every shard holds a clone of
    /// the same accumulator, so its totals are the federation aggregate.
    /// Survives `Restore` (it describes this process's solver work).
    attrib: Option<AttributionRegistry>,
    started: Instant,
    shutting_down: bool,
}

impl std::fmt::Debug for ShardCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCoordinator")
            .field("shards", &self.shards.len())
            .field("placement", &self.placement.name())
            .field("rounds", &self.rounds)
            .field("shutting_down", &self.shutting_down)
            .finish_non_exhaustive()
    }
}

impl ShardCoordinator {
    /// Builds a coordinator with one shard per topology, all running the same
    /// configuration.
    ///
    /// Admission quotas (`ServiceLimits`) apply **per shard**: a federation
    /// of N shards admits up to N × `max_tenants` tenants in total.  With
    /// least-loaded placement (the default) a join is refused only when
    /// every shard is full; round-robin consults no load, so its cursor can
    /// land on a full shard and refuse a join while others still have room.
    ///
    /// # Errors
    ///
    /// Fails when no topology is given, when more than
    /// [`sharded::MAX_SHARDS`] are, or when the configured policy is unknown.
    pub fn new(
        topologies: Vec<ClusterTopology>,
        config: ServiceConfig,
        placement: Box<dyn ShardPlacement>,
    ) -> Result<Self, ServiceError> {
        if topologies.is_empty() {
            return Err(ServiceError::InvalidConfig(
                "a coordinator needs at least one shard".to_string(),
            ));
        }
        if topologies.len() > sharded::MAX_SHARDS {
            return Err(ServiceError::InvalidConfig(format!(
                "{} shards exceed the handle encoding's limit of {}",
                topologies.len(),
                sharded::MAX_SHARDS
            )));
        }
        let shards = topologies
            .into_iter()
            .map(|t| oef_service::SchedulerService::new(t, config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let solve_ewma = vec![0.0; shards.len()];
        Ok(Self {
            shards,
            placement,
            config,
            rounds: 0,
            forwarding: HashMap::new(),
            rebalancer: Rebalancer::new(RebalancerConfig::default())
                .expect("default rebalance policy resolves"),
            solve_ewma,
            migrated: 0,
            metrics: ServiceMetrics::new(),
            obs: None,
            attrib: None,
            started: Instant::now(),
            shutting_down: false,
            rebalance_trail: Vec::new(),
            journal_seq: 0,
        })
    }

    /// Replaces the rebalancer (builder style) — e.g. to run `greedy-top-k`
    /// or a tighter threshold than the default configuration.
    pub fn with_rebalancer(mut self, rebalancer: Rebalancer) -> Self {
        self.rebalancer = rebalancer;
        self
    }

    /// Rebuilds a coordinator from a federated (v5) snapshot JSON string.
    ///
    /// # Errors
    ///
    /// Fails on malformed envelopes, version mismatches (v2, v3 and v4
    /// snapshots are pointed at `oef-servicectl migrate-snapshot`), unknown placement
    /// strategies or rebalance policies, corrupted forwarding tables, and
    /// any per-shard v2 validation failure.
    pub fn from_federated_json(snapshot: &str) -> Result<Self, ServiceError> {
        let parsed = Self::parse_federated(snapshot)?;
        let solve_ewma = vec![0.0; parsed.shards.len()];
        Ok(Self {
            shards: parsed.shards,
            placement: parsed.placement,
            config: parsed.config,
            rounds: parsed.rounds,
            forwarding: parsed.forwarding,
            rebalancer: parsed.rebalancer,
            solve_ewma,
            migrated: 0,
            metrics: ServiceMetrics::new(),
            obs: None,
            attrib: None,
            started: Instant::now(),
            shutting_down: false,
            rebalance_trail: Vec::new(),
            journal_seq: parsed.journal_seq,
        })
    }

    fn parse_federated(snapshot: &str) -> Result<ParsedFederation, ServiceError> {
        let value: serde::Value =
            serde_json::from_str(snapshot).map_err(|e| ServiceError::BadSnapshot(e.to_string()))?;
        match value.get("version").and_then(serde::Value::as_u64) {
            Some(v) if v == u64::from(FEDERATED_SNAPSHOT_VERSION) => {}
            Some(2) => {
                return Err(ServiceError::BadSnapshot(format!(
                    "this is a v2 single-shard snapshot; restore it on an unsharded daemon, or \
                     wrap it into a v{FEDERATED_SNAPSHOT_VERSION} envelope with `oef-servicectl \
                     migrate-snapshot`"
                )));
            }
            Some(3) => {
                return Err(ServiceError::BadSnapshot(format!(
                    "this is a v3 federated envelope (predates handle forwarding); upgrade it \
                     to v{FEDERATED_SNAPSHOT_VERSION} with `oef-servicectl migrate-snapshot`"
                )));
            }
            Some(4) => {
                return Err(ServiceError::BadSnapshot(format!(
                    "this is a v4 federated envelope (predates the command journal); upgrade \
                     it to v{FEDERATED_SNAPSHOT_VERSION} with `oef-servicectl migrate-snapshot`"
                )));
            }
            Some(v) => {
                return Err(ServiceError::BadSnapshot(format!(
                    "federated snapshot version {v} is not supported (coordinator supports \
                     {FEDERATED_SNAPSHOT_VERSION})"
                )));
            }
            None => {
                return Err(ServiceError::BadSnapshot(
                    "snapshot has no numeric `version` field".to_string(),
                ));
            }
        }
        let envelope = FederatedSnapshot::deserialize(&value)
            .map_err(|e| ServiceError::BadSnapshot(e.to_string()))?;
        if envelope.shards.is_empty() {
            return Err(ServiceError::BadSnapshot(
                "federated snapshot holds no shards".to_string(),
            ));
        }
        if envelope.shards.len() > sharded::MAX_SHARDS {
            return Err(ServiceError::BadSnapshot(format!(
                "federated snapshot holds {} shards, above the limit of {}",
                envelope.shards.len(),
                sharded::MAX_SHARDS
            )));
        }
        let mut placement = crate::placement::placement_from_name(&envelope.placement.strategy)
            .ok_or_else(|| {
                ServiceError::BadSnapshot(format!(
                    "unknown placement strategy `{}`",
                    envelope.placement.strategy
                ))
            })?;
        placement.restore_cursor(envelope.placement.cursor);
        // Each shard entry goes through the complete unsharded restore path,
        // so every v2 validation (identity maps, topology invariants) applies
        // per shard.
        let mut shards: Vec<oef_service::SchedulerService> =
            Vec::with_capacity(envelope.shards.len());
        for (i, entry) in envelope.shards.iter().enumerate() {
            let json = serde_json::to_string(entry)
                .map_err(|e| ServiceError::BadSnapshot(format!("shard {i}: {e}")))?;
            let shard = oef_service::SchedulerService::from_snapshot_json(&json)
                .map_err(|e| ServiceError::BadSnapshot(format!("shard {i}: {e}")))?;
            // Every shard runs the same policy and limits — the invariant the
            // coordinator's config template stands for.  A coordinator always
            // snapshots agreeing configs, so disagreement means a hand-edited
            // envelope; refuse it instead of silently scheduling one shard
            // under a different policy than `Status` reports.
            if i > 0 && shard.config() != shards[0].config() {
                return Err(ServiceError::BadSnapshot(format!(
                    "shard {i} config differs from shard 0 (all shards of a federation \
                     share one policy and one set of limits)"
                )));
            }
            shards.push(shard);
        }
        let config = shards[0].config().clone();
        // Forwarding table: refuse duplicates and cycles up front — a
        // corrupted table would otherwise panic some later lookup.
        let mut forwarding = HashMap::with_capacity(envelope.forwarding.len());
        for entry in &envelope.forwarding {
            if forwarding.insert(entry.from, entry.to).is_some() {
                return Err(ServiceError::BadSnapshot(format!(
                    "forwarding table maps handle {} twice",
                    sharded::format(entry.from)
                )));
            }
        }
        if let Err(start) = sharded::validate_acyclic(&forwarding) {
            return Err(ServiceError::BadSnapshot(format!(
                "forwarding table contains a cycle reachable from handle {}",
                sharded::format(start)
            )));
        }
        let rebalancer = Rebalancer::new(envelope.rebalancer).map_err(ServiceError::BadSnapshot)?;
        Ok(ParsedFederation {
            shards,
            placement,
            rounds: envelope.round,
            config,
            forwarding,
            rebalancer,
            journal_seq: envelope.journal_seq,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shards, in shard-index order (tests, reporting).
    pub fn shards(&self) -> &[oef_service::SchedulerService] {
        &self.shards
    }

    /// Coordinator rounds completed (every round ticks all shards once).
    pub fn rounds_run(&self) -> usize {
        self.rounds
    }

    /// Whether a `Shutdown` command has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Resolves a (possibly migrated-away) handle to the live handle it
    /// forwards to, compressing the chain it walked.  Handles that never
    /// migrated resolve to themselves.
    pub fn resolve_handle(&mut self, handle: u64) -> u64 {
        sharded::resolve_forwarded(&mut self.forwarding, handle)
    }

    /// Entries in the forwarding table.
    pub fn forwarding_entries(&self) -> usize {
        self.forwarding.len()
    }

    /// Longest forwarding chain (lookups compress, so this hovers at 1).
    pub fn forwarding_depth(&self) -> usize {
        sharded::forwarding_depth(&self.forwarding)
    }

    /// The rebalancer's durable configuration.
    pub fn rebalancer_config(&self) -> &RebalancerConfig {
        self.rebalancer.config()
    }

    /// Tenants moved between shards over this process's lifetime.
    pub fn tenants_migrated(&self) -> u64 {
        self.migrated
    }

    /// Sequence number of the last journaled command applied (0 without a
    /// journal).
    pub fn journal_seq(&self) -> u64 {
        self.journal_seq
    }

    /// Records that every command up to journal sequence `seq` is applied;
    /// the next snapshot embeds it so replay resumes at `seq + 1`.
    pub fn set_journal_seq(&mut self, seq: u64) {
        self.journal_seq = seq;
    }

    /// Takes the migrations the last `Rebalance` pass attempted (tenant wire
    /// handle, target shard), in execution order.  A journaling wrapper logs
    /// these as `MigrateTenant` commands — replaying the *moves* sidesteps
    /// the planner's dependence on wall-clock solve latencies.
    pub fn drain_rebalance_trail(&mut self) -> Vec<(u64, usize)> {
        std::mem::take(&mut self.rebalance_trail)
    }

    /// Hooks the federation's metric cells into `registry`: the front-door
    /// series and the fan-out histogram at the coordinator, every shard's
    /// solve/fairness series under its `{shard="N"}` label, and the
    /// federation topology gauges (shards, forwarding table, migrations,
    /// solve EWMA).
    pub fn attach_observability(&mut self, registry: &Registry) {
        self.metrics.register_front(registry);
        self.metrics.register_fanout(registry);
        for (shard, service) in self.shards.iter_mut().enumerate() {
            service.attach_shard_observability(registry, shard);
        }
        let obs = CoordObs {
            registry: registry.clone(),
            queue_depth: registry.gauge(
                "oef_queue_depth",
                "Commands waiting in the daemon's bounded queue.",
                &[],
            ),
            uptime: registry.gauge(
                "oef_uptime_seconds",
                "Seconds since the daemon process started.",
                &[],
            ),
            shards: registry.gauge("oef_shards", "Scheduler shards in the federation.", &[]),
            forwarding_entries: registry.gauge(
                "oef_forwarding_entries",
                "Live aliases in the migration forwarding table.",
                &[],
            ),
            forwarding_depth: registry.gauge(
                "oef_forwarding_depth",
                "Longest alias chain a handle lookup may chase.",
                &[],
            ),
            migrated: registry.counter(
                "oef_tenants_migrated_total",
                "Tenants moved between shards.",
                &[],
            ),
            solve_ewma: registry.gauge_family(
                "oef_solve_ewma_seconds",
                "Per-shard EWMA of round solve latency (the rebalancer's load signal).",
                &[],
            ),
            trace_dropped: registry.counter(
                "oef_trace_dropped_spans_total",
                "Spans dropped because a trace hit its per-trace span cap.",
                &[],
            ),
            log_dropped: registry.counter(
                "oef_log_dropped_lines_total",
                "Structured log lines dropped by the non-blocking writer.",
                &[],
            ),
        };
        self.obs = Some(obs);
        self.refresh_topology_obs();
    }

    /// Hands every shard a clone of one shared solve-cost registry, so
    /// per-tenant attribution aggregates across the federation.  Call after
    /// [`Self::attach_observability`] when the registry is also attached to
    /// the exposition registry.
    pub fn attach_attribution(&mut self, attrib: &AttributionRegistry) {
        for (shard, service) in self.shards.iter_mut().enumerate() {
            service.attach_attribution(attrib.clone(), shard);
        }
        self.attrib = Some(attrib.clone());
    }

    /// Refreshes the federation topology gauges.  `forwarding_depth` walks
    /// the whole table, so this only runs after commands that can move
    /// tenants or reshape the federation — not on the per-command hot path.
    fn refresh_topology_obs(&self) {
        let Some(obs) = &self.obs else {
            return;
        };
        obs.shards.set(self.shards.len() as f64);
        obs.forwarding_entries.set(self.forwarding.len() as f64);
        obs.forwarding_depth
            .set(sharded::forwarding_depth(&self.forwarding) as f64);
        obs.migrated.set(self.migrated);
        obs.solve_ewma.replace(
            self.solve_ewma
                .iter()
                .enumerate()
                .map(|(shard, ewma)| (vec![("shard".to_string(), shard.to_string())], *ewma))
                .collect(),
        );
    }

    /// Executes one command, routing it across the shards.
    pub fn apply(&mut self, command: Command, queue_depth: usize) -> Response {
        let reshapes = matches!(
            command,
            Command::Tick
                | Command::MigrateTenant { .. }
                | Command::Rebalance
                | Command::TenantLeave { .. }
                | Command::Restore { .. }
        );
        let response = self.dispatch(command, queue_depth);
        self.metrics
            .record_command(!matches!(response, Response::Error { .. }));
        if let Some(obs) = &self.obs {
            obs.queue_depth.set(queue_depth as f64);
            obs.uptime.set(self.started.elapsed().as_secs_f64());
            obs.trace_dropped.set(oef_trace::spans_dropped());
            obs.log_dropped.set(oef_trace::log_lines_dropped());
            if reshapes {
                self.refresh_topology_obs();
            }
        }
        response
    }

    fn dispatch(&mut self, command: Command, queue_depth: usize) -> Response {
        if self.shutting_down && !matches!(command, Command::Status | Command::Metrics) {
            return Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "daemon is shutting down".to_string(),
            };
        }
        match command {
            Command::TenantJoin { .. } => {
                let shard = self.placement.place_tenant(&self.loads());
                let response = self.shards[shard].apply(command, 0);
                retag(shard, response)
            }
            Command::AddHost { .. } => {
                let shard = self.placement.place_host(&self.loads());
                let response = self.shards[shard].apply(command, 0);
                retag(shard, response)
            }
            Command::TenantLeave { tenant } => {
                let resolved = self.resolve_handle(tenant);
                let response = self.route_resolved(resolved, ErrorCode::UnknownTenant, |local| {
                    Command::TenantLeave { tenant: local }
                });
                if matches!(response, Response::TenantLeft { .. }) {
                    // Every alias of the departed tenant is now permanently
                    // dead; dropping the edges keeps the table from growing
                    // without bound over a federation's lifetime.
                    self.purge_forwarding(resolved);
                }
                response
            }
            Command::UpdateSpeedups { tenant, speedup } => {
                self.route_by_handle(tenant, ErrorCode::UnknownTenant, move |local| {
                    Command::UpdateSpeedups {
                        tenant: local,
                        speedup,
                    }
                })
            }
            Command::SubmitJob {
                tenant,
                model,
                workers,
                total_work,
            } => self.route_by_handle(tenant, ErrorCode::UnknownTenant, move |local| {
                Command::SubmitJob {
                    tenant: local,
                    model,
                    workers,
                    total_work,
                }
            }),
            Command::JobFinished { tenant, job } => {
                self.route_by_handle(tenant, ErrorCode::UnknownTenant, move |local| {
                    Command::JobFinished { tenant: local, job }
                })
            }
            // Hosts never migrate, so host handles bypass the forwarding
            // table — they live in a different handle map than tenants, and
            // a host handle may equal a retired tenant handle bit-for-bit.
            Command::RemoveHost { handle } => {
                self.route_resolved(handle, ErrorCode::UnknownHost, |local| {
                    Command::RemoveHost { handle: local }
                })
            }
            Command::MigrateTenant { tenant, shard } => self.migrate_tenant(tenant, shard),
            Command::Rebalance => self.rebalance(),
            Command::Tick => self.tick(),
            Command::Status => self.status(),
            Command::Metrics => self.metrics_report(queue_depth),
            Command::Snapshot => self.snapshot(),
            Command::Restore { snapshot } => self.restore(&snapshot),
            Command::Shutdown => {
                for shard in &mut self.shards {
                    shard.apply(Command::Shutdown, 0);
                }
                self.shutting_down = true;
                Response::ShuttingDown
            }
        }
    }

    /// Current per-shard loads, indexed by shard.
    fn loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .map(|s| ShardLoad {
                tenants: s.tenant_handles().len(),
                hosts: s.state().topology().hosts().len(),
                total_devices: s.state().topology().total_devices(),
            })
            .collect()
    }

    /// Routes a handle-carrying command: the handle is first chased through
    /// the forwarding table (so handles retired by migrations keep working),
    /// then dispatched to the shard packed in the live handle's high bits.
    /// Replies carry the *live* handle — clients learn the one-hop route.
    fn route_by_handle(
        &mut self,
        handle: u64,
        unknown: ErrorCode,
        rebuild: impl FnOnce(u64) -> Command,
    ) -> Response {
        let resolved = self.resolve_handle(handle);
        self.route_resolved(resolved, unknown, rebuild)
    }

    /// The post-resolution half of [`ShardCoordinator::route_by_handle`].
    fn route_resolved(
        &mut self,
        resolved: u64,
        unknown: ErrorCode,
        rebuild: impl FnOnce(u64) -> Command,
    ) -> Response {
        let (shard, local) = sharded::decode(resolved);
        if shard >= self.shards.len() {
            return Response::Error {
                code: unknown,
                message: format!(
                    "handle {} names shard {shard}, but only {} shard(s) exist",
                    sharded::format(resolved),
                    self.shards.len()
                ),
            };
        }
        let response = self.shards[shard].apply(rebuild(local), 0);
        retag(shard, response)
    }

    /// Drops every forwarding edge that ends at `departed` (all chains are
    /// compressed first so edges ending at an intermediate alias are caught
    /// too).
    fn purge_forwarding(&mut self, departed: u64) {
        let keys: Vec<u64> = self.forwarding.keys().copied().collect();
        for key in keys {
            sharded::resolve_forwarded(&mut self.forwarding, key);
        }
        self.forwarding.retain(|_, target| *target != departed);
    }

    /// Moves a tenant to `target`, re-minting its handle there and recording
    /// a forwarding edge so the old handle (and every older alias) keeps
    /// routing.
    fn migrate_tenant(&mut self, handle: u64, target: usize) -> Response {
        if target >= self.shards.len() {
            return Response::Error {
                code: ErrorCode::InvalidArgument,
                message: format!(
                    "target shard {target} does not exist ({} shard(s))",
                    self.shards.len()
                ),
            };
        }
        let resolved = self.resolve_handle(handle);
        let (source, local) = sharded::decode(resolved);
        if source >= self.shards.len() {
            return Response::Error {
                code: ErrorCode::UnknownTenant,
                message: format!(
                    "handle {} names shard {source}, but only {} shard(s) exist",
                    sharded::format(resolved),
                    self.shards.len()
                ),
            };
        }
        if source == target {
            return Response::Error {
                code: ErrorCode::InvalidArgument,
                message: format!(
                    "tenant {} already lives on shard {target}",
                    sharded::format(resolved)
                ),
            };
        }
        match TenantMigrator::migrate(&mut self.shards, source, target, local) {
            Ok(new_local) => {
                let fresh = sharded::encode(target, new_local);
                self.forwarding.insert(resolved, fresh);
                self.migrated += 1;
                Response::TenantMigrated {
                    tenant: fresh,
                    previous: resolved,
                    from: source,
                    to: target,
                }
            }
            Err(failure) => {
                // A refused install rolled the tenant back under a fresh
                // handle on the source shard; forward the retired handle to
                // it so the client's handle survives even a failed move.
                if let MigrateFailure::Rejected { reinstalled, .. } = &failure {
                    if *reinstalled != 0 {
                        self.forwarding
                            .insert(resolved, sharded::encode(source, *reinstalled));
                    }
                }
                let (code, message) = failure.to_command_error();
                Response::Error { code, message }
            }
        }
    }

    /// Current per-shard load observations for the rebalancer.
    fn observe(&self) -> Vec<ShardObservation> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, service)| {
                ShardObservation::from_service(shard, service, self.solve_ewma[shard])
            })
            .collect()
    }

    /// One rebalancing pass: observe → plan → execute → report.
    fn rebalance(&mut self) -> Response {
        self.rebalance_trail.clear();
        let observations = self.observe();
        let imbalance_before = self.rebalancer.imbalance(&observations);
        let plan = self.rebalancer.plan(&observations);
        let mut moves = Vec::with_capacity(plan.moves.len());
        for planned in plan.moves {
            // The planner scores load, not quota: a planned target may be at
            // its tenant limit (admission would refuse the install).  Skip
            // such moves — a partially executed pass is still an improvement
            // and the next pass re-plans from the new state — instead of
            // aborting with an error every pass until an operator intervenes.
            if !self.shards[planned.to].has_tenant_capacity() {
                continue;
            }
            // Trail every *attempted* move, success or failure: even a
            // refused install mutates (rollback re-mint + forwarding edge),
            // so a journal must replay the attempt to reproduce the state.
            self.rebalance_trail.push((planned.tenant, planned.to));
            match self.migrate_tenant(planned.tenant, planned.to) {
                Response::TenantMigrated {
                    tenant,
                    previous,
                    from,
                    to,
                } => moves.push(ExecutedMigration {
                    previous,
                    tenant,
                    from,
                    to,
                }),
                Response::Error { code, message } => {
                    // Surface a partial pass loudly; the moves already made
                    // stand (each was individually consistent).
                    return Response::Error {
                        code,
                        message: format!(
                            "rebalance aborted after {} of its planned moves: {message}",
                            moves.len()
                        ),
                    };
                }
                other => {
                    return Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("migration returned {other:?}"),
                    };
                }
            }
        }
        let imbalance_after = self.rebalancer.imbalance(&self.observe());
        Response::Rebalanced(RebalanceReport {
            policy: self.rebalancer.policy_name().to_string(),
            imbalance_before,
            imbalance_after,
            threshold: self.rebalancer.config().threshold,
            moves,
        })
    }

    /// One federation round: every shard solves its own LP in parallel.
    fn tick(&mut self) -> Response {
        let fanout_started = Instant::now();
        // The whole fan-out is one `solve` span on the worker thread.  The
        // scoped shard threads have no recorder of their own, so the span
        // covers spawn + slowest shard, not per-shard breakdowns — the
        // per-shard split lives in the `{shard}`-labelled histograms.
        let fanout_span = oef_trace::span("solve");
        // Fan out only when threads can actually overlap: on a single
        // hardware thread the spawn/join cost is pure overhead on every
        // round, while the sharding win that remains — each shard's LP
        // staying small — needs no parallelism at all.
        let parallel = self.shards.len() > 1
            && std::thread::available_parallelism()
                .map(|p| p.get() > 1)
                .unwrap_or(false);
        let responses: Vec<Response> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| scope.spawn(move || shard.apply(Command::Tick, 0)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard tick thread panicked"))
                    .collect()
            })
        } else {
            self.shards
                .iter_mut()
                .map(|shard| shard.apply(Command::Tick, 0))
                .collect()
        };
        drop(fanout_span);

        let mut merged = RoundSummary {
            round: self.rounds,
            time_secs: 0.0,
            solver_time_secs: 0.0,
            warm_start: true,
            tenants: Vec::new(),
        };
        let mut solved_any = false;
        for (shard, response) in responses.into_iter().enumerate() {
            if let Response::RoundCompleted(summary) = &response {
                // Per-shard solve-latency EWMA: the load signal the
                // rebalancer watches.  Empty rounds ran no solve and must
                // not drag a busy shard's average toward zero.
                if !summary.tenants.is_empty() {
                    let previous = self.solve_ewma[shard];
                    self.solve_ewma[shard] = if previous == 0.0 {
                        summary.solver_time_secs
                    } else {
                        (1.0 - EWMA_ALPHA) * previous + EWMA_ALPHA * summary.solver_time_secs
                    };
                }
            }
            let summary = match response {
                Response::RoundCompleted(summary) => summary,
                Response::Error { code, message } => {
                    // One shard failing mid-fan-out leaves the others a round
                    // ahead; surface that loudly instead of pretending the
                    // federation ticked.
                    return Response::Error {
                        code,
                        message: format!(
                            "shard {shard} failed its round (other shards may have advanced): \
                             {message}"
                        ),
                    };
                }
                other => {
                    return Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("shard {shard} tick returned {other:?}"),
                    }
                }
            };
            merged.time_secs = merged.time_secs.max(summary.time_secs);
            // The fan-out runs shards concurrently, so the federation's solve
            // latency is the slowest shard, not the sum.
            merged.solver_time_secs = merged.solver_time_secs.max(summary.solver_time_secs);
            if !summary.tenants.is_empty() {
                solved_any = true;
                merged.warm_start &= summary.warm_start;
            }
            merged
                .tenants
                .extend(summary.tenants.into_iter().map(|t| TenantRoundSummary {
                    tenant: tag(shard, t.tenant),
                    ..t
                }));
        }
        merged.warm_start &= solved_any;
        self.rounds += 1;
        if solved_any {
            // Wall-clock of the whole fan-out (thread spawn + slowest shard's
            // solve/placement), which is what round throughput is made of.
            self.metrics
                .record_round(fanout_started.elapsed().as_secs_f64());
        }
        Response::RoundCompleted(merged)
    }

    fn status(&mut self) -> Response {
        let mut aggregate = StatusReport {
            policy: self.config.policy.clone(),
            protocol: PROTOCOL_VERSION,
            uptime_secs: self.started.elapsed().as_secs_f64(),
            round: self.rounds,
            time_secs: 0.0,
            tenants: 0,
            jobs: 0,
            hosts: 0,
            total_devices: 0,
            topology: Vec::new(),
            shards: Vec::new(),
            forwarding_entries: self.forwarding.len(),
            forwarding_depth: sharded::forwarding_depth(&self.forwarding),
        };
        for (shard, service) in self.shards.iter_mut().enumerate() {
            let Response::Status(report) = service.apply(Command::Status, 0) else {
                unreachable!("Status is infallible on a shard");
            };
            aggregate.time_secs = aggregate.time_secs.max(report.time_secs);
            aggregate.tenants += report.tenants;
            aggregate.jobs += report.jobs;
            aggregate.hosts += report.hosts;
            aggregate.total_devices += report.total_devices;
            aggregate
                .topology
                .extend(report.topology.into_iter().map(|mut h| {
                    h.host = tag(shard, h.host);
                    h
                }));
            aggregate.shards.push(ShardStatusEntry {
                shard,
                tenants: report.tenants,
                jobs: report.jobs,
                hosts: report.hosts,
                total_devices: report.total_devices,
                round: report.round,
                solve_ewma_secs: self.solve_ewma[shard],
            });
        }
        Response::Status(aggregate)
    }

    fn metrics_report(&mut self, queue_depth: usize) -> Response {
        // Command counters and the round-latency window are coordinator-level
        // (one entry per federation round, measuring the parallel fan-out);
        // solver and job counters are summed over the shards.
        let mut aggregate = MetricsReport {
            commands_processed: self.metrics.commands_processed(),
            commands_rejected: self.metrics.commands_rejected(),
            rounds_solved: self.metrics.rounds_solved(),
            jobs_completed: 0,
            warm_solves: 0,
            cold_solves: 0,
            dense_fallbacks: 0,
            basis_repairs: 0,
            churn_repairs: 0,
            refactorizations: 0,
            eta_pivots: 0,
            warm_hit_rate: 0.0,
            solve_p50_secs: self.metrics.solve_percentile(0.5),
            solve_p99_secs: self.metrics.solve_percentile(0.99),
            solve_last_secs: self.metrics.last_solve_secs(),
            queue_depth,
            tenants: 0,
            hosts: 0,
            tenants_migrated: self.migrated,
            uptime_secs: self.started.elapsed().as_secs_f64(),
            solve_ewma_secs: self.solve_ewma.clone(),
            journal_appends: 0,
            journal_fsyncs: 0,
            journal_appended_bytes: 0,
            journal_truncated_bytes_on_recovery: 0,
        };
        for service in &mut self.shards {
            let Response::Metrics(report) = service.apply(Command::Metrics, 0) else {
                unreachable!("Metrics is infallible on a shard");
            };
            aggregate.jobs_completed += report.jobs_completed;
            aggregate.warm_solves += report.warm_solves;
            aggregate.cold_solves += report.cold_solves;
            aggregate.dense_fallbacks += report.dense_fallbacks;
            aggregate.basis_repairs += report.basis_repairs;
            aggregate.churn_repairs += report.churn_repairs;
            aggregate.refactorizations += report.refactorizations;
            aggregate.eta_pivots += report.eta_pivots;
            aggregate.tenants += report.tenants;
            aggregate.hosts += report.hosts;
        }
        let total_solves = aggregate.warm_solves + aggregate.cold_solves;
        if total_solves > 0 {
            aggregate.warm_hit_rate = aggregate.warm_solves as f64 / total_solves as f64;
        }
        Response::Metrics(aggregate)
    }

    /// The federated snapshot JSON, independent of the command dispatch and
    /// its shutting-down gate: the journal wrapper checkpoints *after* a
    /// `Shutdown` has been accepted, when the wire `Snapshot` command is
    /// already refused.
    ///
    /// # Errors
    ///
    /// Serialization failures, as a message.
    pub fn snapshot_json(&self) -> Result<String, String> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for (i, service) in self.shards.iter().enumerate() {
            let json = service
                .snapshot_json()
                .map_err(|e| format!("shard {i} snapshot failed: {e}"))?;
            let value = serde_json::from_str::<serde::Value>(&json)
                .map_err(|e| format!("shard {i} snapshot did not re-parse: {e}"))?;
            shards.push(value);
        }
        // Canonical encoding: the table is a hash map in memory, a sorted
        // array on disk, so identical federations write identical envelopes.
        let mut forwarding: Vec<ForwardingEntry> = self
            .forwarding
            .iter()
            .map(|(&from, &to)| ForwardingEntry { from, to })
            .collect();
        forwarding.sort_by_key(|entry| entry.from);
        let envelope = FederatedSnapshot {
            version: FEDERATED_SNAPSHOT_VERSION,
            round: self.rounds,
            journal_seq: self.journal_seq,
            placement: PlacementState {
                strategy: self.placement.name().to_string(),
                cursor: self.placement.cursor(),
            },
            forwarding,
            rebalancer: self.rebalancer.config().clone(),
            shards,
        };
        serde_json::to_string(&envelope).map_err(|e| format!("federated snapshot failed: {e}"))
    }

    fn snapshot(&mut self) -> Response {
        match self.snapshot_json() {
            Ok(snapshot) => Response::Snapshot { snapshot },
            Err(message) => Response::Error {
                code: ErrorCode::Internal,
                message,
            },
        }
    }

    fn restore(&mut self, snapshot: &str) -> Response {
        let parsed = match Self::parse_federated(snapshot) {
            Ok(parsed) => parsed,
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::InvalidArgument,
                    message: e.to_string(),
                }
            }
        };
        let tenants = parsed.shards.iter().map(|s| s.tenant_handles().len()).sum();
        // The coordinator's metrics, migration counter and uptime describe
        // this process, not the restored state; the shard count, forwarding
        // table and rebalancer config follow the snapshot.  Like the
        // unsharded restore path, the running queue capacity stays
        // authoritative — the server's bounded queue was sized at spawn and
        // cannot be resized live.  The solve EWMA restarts cold (it is a
        // live load signal, not durable state).
        let queue_capacity = self.config.limits.queue_capacity;
        self.solve_ewma = vec![0.0; parsed.shards.len()];
        self.shards = parsed.shards;
        self.placement = parsed.placement;
        self.rounds = parsed.rounds;
        self.config = parsed.config;
        self.forwarding = parsed.forwarding;
        self.rebalancer = parsed.rebalancer;
        self.journal_seq = parsed.journal_seq;
        self.config.limits.queue_capacity = queue_capacity;
        // Restore rebuilt every shard with fresh metric cells; re-attach
        // them so the exposition endpoint reads the live shards again (the
        // registry replaces the stale handles in place).
        if let Some(obs) = &self.obs {
            let registry = obs.registry.clone();
            for (shard, service) in self.shards.iter_mut().enumerate() {
                service.attach_shard_observability(&registry, shard);
            }
        }
        // Restore rebuilt the shards without their attribution handle;
        // re-attach it and fold cost history of handles the restored
        // population no longer contains (union across all shards — any
        // shard may own any handle).
        if let Some(attrib) = self.attrib.clone() {
            let live: Vec<u64> = self
                .shards
                .iter()
                .enumerate()
                .flat_map(|(shard, s)| s.tenant_handles().iter().map(move |&h| tag(shard, h)))
                .collect();
            attrib.retain(&live);
            for (shard, service) in self.shards.iter_mut().enumerate() {
                service.attach_attribution(attrib.clone(), shard);
            }
        }
        Response::Restored { tenants }
    }
}

impl CommandHandler for ShardCoordinator {
    fn apply(&mut self, command: Command, queue_depth: usize) -> Response {
        ShardCoordinator::apply(self, command, queue_depth)
    }

    fn queue_capacity(&self) -> usize {
        self.config.limits.queue_capacity
    }

    fn attach_observability(&mut self, registry: &Registry) {
        ShardCoordinator::attach_observability(self, registry);
    }

    fn attach_attribution(&mut self, attrib: &AttributionRegistry) {
        ShardCoordinator::attach_attribution(self, attrib);
    }
}

/// Tags a shard-local handle for the wire; the null handle stays null.
fn tag(shard: usize, handle: u64) -> u64 {
    if handle == 0 {
        0
    } else {
        sharded::encode(shard, handle)
    }
}

/// Rewrites every handle a shard reply carries into its shard-tagged wire
/// form.  Replies without handles (including errors) pass through untouched.
fn retag(shard: usize, response: Response) -> Response {
    match response {
        Response::TenantJoined { tenant } => Response::TenantJoined {
            tenant: tag(shard, tenant),
        },
        Response::TenantLeft { tenant } => Response::TenantLeft {
            tenant: tag(shard, tenant),
        },
        Response::SpeedupsUpdated { tenant } => Response::SpeedupsUpdated {
            tenant: tag(shard, tenant),
        },
        Response::JobSubmitted { tenant, job } => Response::JobSubmitted {
            tenant: tag(shard, tenant),
            job,
        },
        Response::JobFinished { tenant, job } => Response::JobFinished {
            tenant: tag(shard, tenant),
            job,
        },
        Response::HostAdded { host } => Response::HostAdded {
            host: tag(shard, host),
        },
        Response::HostRemoved { host } => Response::HostRemoved {
            host: tag(shard, host),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{placement_from_name, RoundRobin};

    fn coordinator(shards: usize) -> ShardCoordinator {
        ShardCoordinator::new(
            (0..shards)
                .map(|_| ClusterTopology::paper_cluster())
                .collect(),
            ServiceConfig::default(),
            placement_from_name("least-loaded").unwrap(),
        )
        .unwrap()
    }

    fn join(c: &mut ShardCoordinator, name: &str) -> u64 {
        match c.apply(
            Command::TenantJoin {
                name: name.into(),
                weight: 1,
                speedup: vec![1.0, 1.2, 1.4],
            },
            0,
        ) {
            Response::TenantJoined { tenant } => tenant,
            other => panic!("join failed: {other:?}"),
        }
    }

    #[test]
    fn least_loaded_spreads_tenants_and_tags_handles() {
        let mut c = coordinator(3);
        let handles: Vec<u64> = (0..6).map(|i| join(&mut c, &format!("t{i}"))).collect();
        let mut per_shard = [0usize; 3];
        for &h in &handles {
            per_shard[sharded::shard_of(h)] += 1;
        }
        assert_eq!(per_shard, [2, 2, 2], "least-loaded balances the join order");
        // Handles are unique on the wire even though each shard minted 1, 2.
        let mut unique = handles.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), handles.len());
    }

    #[test]
    fn handle_routing_reaches_the_minting_shard() {
        let mut c = coordinator(2);
        let a = join(&mut c, "alice");
        let b = join(&mut c, "bob");
        assert_ne!(sharded::shard_of(a), sharded::shard_of(b));
        let r = c.apply(
            Command::SubmitJob {
                tenant: b,
                model: "m".into(),
                workers: 1,
                total_work: 1e6,
            },
            0,
        );
        assert!(
            matches!(r, Response::JobSubmitted { tenant, .. } if tenant == b),
            "{r:?}"
        );
        let r = c.apply(Command::TenantLeave { tenant: a }, 0);
        assert!(matches!(r, Response::TenantLeft { tenant } if tenant == a));
        // A handle naming a shard that does not exist is UnknownTenant, not a
        // panic or a mis-route.
        let bogus = sharded::encode(7, 1);
        let r = c.apply(Command::TenantLeave { tenant: bogus }, 0);
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::UnknownTenant,
                    ..
                }
            ),
            "{r:?}"
        );
    }

    #[test]
    fn parallel_tick_merges_all_shards() {
        let mut c = coordinator(2);
        let handles: Vec<u64> = (0..4).map(|i| join(&mut c, &format!("t{i}"))).collect();
        for &h in &handles {
            c.apply(
                Command::SubmitJob {
                    tenant: h,
                    model: "m".into(),
                    workers: 1,
                    total_work: 1e9,
                },
                0,
            );
        }
        let Response::RoundCompleted(round) = c.apply(Command::Tick, 0) else {
            panic!("tick failed");
        };
        assert_eq!(round.round, 0);
        assert_eq!(round.tenants.len(), 4, "both shards' tenants are merged");
        for t in &round.tenants {
            assert!(handles.contains(&t.tenant), "summary keys by wire handle");
            assert!(t.devices_held > 0);
        }
        assert_eq!(c.rounds_run(), 1);
    }

    #[test]
    fn status_and_metrics_aggregate_across_shards() {
        let mut c = coordinator(2);
        let t = join(&mut c, "alice");
        join(&mut c, "bob");
        c.apply(
            Command::SubmitJob {
                tenant: t,
                model: "m".into(),
                workers: 1,
                total_work: 1e9,
            },
            0,
        );
        c.apply(Command::Tick, 0);
        let Response::Status(status) = c.apply(Command::Status, 0) else {
            panic!("status failed");
        };
        assert_eq!(status.tenants, 2);
        assert_eq!(status.hosts, 12);
        assert_eq!(status.total_devices, 48);
        assert_eq!(status.shards.len(), 2);
        assert_eq!(status.shards.iter().map(|s| s.tenants).sum::<usize>(), 2);
        assert_eq!(status.round, 1);
        assert!(status.uptime_secs >= 0.0);
        // Topology handles carry their shard index.
        let shard_ids: std::collections::HashSet<usize> = status
            .topology
            .iter()
            .map(|h| sharded::shard_of(h.host))
            .collect();
        assert_eq!(shard_ids.len(), 2);

        let Response::Metrics(m) = c.apply(Command::Metrics, 0) else {
            panic!("metrics failed");
        };
        assert_eq!(m.tenants, 2);
        assert_eq!(m.hosts, 12);
        assert_eq!(m.rounds_solved, 1);
        assert!(m.cold_solves >= 1, "first round is a cold solve");
    }

    #[test]
    fn round_robin_cursor_survives_the_snapshot() {
        let mut c = ShardCoordinator::new(
            vec![
                ClusterTopology::paper_cluster(),
                ClusterTopology::paper_cluster(),
            ],
            ServiceConfig::default(),
            Box::<RoundRobin>::default(),
        )
        .unwrap();
        let first = join(&mut c, "a");
        let Response::Snapshot { snapshot } = c.apply(Command::Snapshot, 0) else {
            panic!("snapshot failed");
        };
        let mut restored = ShardCoordinator::from_federated_json(&snapshot).unwrap();
        // Both the original and the restored coordinator must place the next
        // tenant on the *same* shard (the cursor traveled with the envelope).
        let from_original = join(&mut c, "b");
        let from_restored = join(&mut restored, "b");
        assert_eq!(from_original, from_restored);
        assert_ne!(sharded::shard_of(first), sharded::shard_of(from_original));
    }

    #[test]
    fn v2_snapshots_are_pointed_at_the_migration_tool() {
        let mut single = oef_service::SchedulerService::new(
            ClusterTopology::paper_cluster(),
            ServiceConfig::default(),
        )
        .unwrap();
        let Response::Snapshot { snapshot } = single.apply(Command::Snapshot, 0) else {
            panic!("snapshot failed");
        };
        let err = ShardCoordinator::from_federated_json(&snapshot).unwrap_err();
        let ServiceError::BadSnapshot(reason) = err else {
            panic!("expected BadSnapshot");
        };
        assert!(reason.contains("migrate-snapshot"), "reason: {reason}");
    }

    fn submit(c: &mut ShardCoordinator, tenant: u64) -> u64 {
        match c.apply(
            Command::SubmitJob {
                tenant,
                model: "m".into(),
                workers: 1,
                total_work: 1e9,
            },
            0,
        ) {
            Response::JobSubmitted { job, .. } => job,
            other => panic!("submit failed: {other:?}"),
        }
    }

    #[test]
    fn migrate_reminta_handle_and_forwards_the_old_one() {
        let mut c = coordinator(2);
        let alice = join(&mut c, "alice");
        let bob = join(&mut c, "bob");
        let job = submit(&mut c, alice);
        let source = sharded::shard_of(alice);
        let target = 1 - source;

        let Response::TenantMigrated {
            tenant: fresh,
            previous,
            from,
            to,
        } = c.apply(
            Command::MigrateTenant {
                tenant: alice,
                shard: target,
            },
            0,
        )
        else {
            panic!("migrate failed");
        };
        assert_eq!((previous, from, to), (alice, source, target));
        assert_eq!(sharded::shard_of(fresh), target);
        assert_eq!(c.forwarding_entries(), 1);
        assert_eq!(c.tenants_migrated(), 1);

        // The old handle still works for every handle-carrying command, and
        // replies teach the caller the live handle.
        let r = c.apply(
            Command::UpdateSpeedups {
                tenant: alice,
                speedup: vec![1.0, 1.3, 1.5],
            },
            0,
        );
        assert!(
            matches!(r, Response::SpeedupsUpdated { tenant } if tenant == fresh),
            "{r:?}"
        );
        // The pre-migration job id still resolves through the old handle.
        let r = c.apply(Command::JobFinished { tenant: alice, job }, 0);
        assert!(
            matches!(r, Response::JobFinished { tenant, .. } if tenant == fresh),
            "{r:?}"
        );

        // A second hop: migrate back; the chain compresses on lookup.
        let Response::TenantMigrated { tenant: back, .. } = c.apply(
            Command::MigrateTenant {
                tenant: alice,
                shard: source,
            },
            0,
        ) else {
            panic!("second migrate failed");
        };
        assert_eq!(c.forwarding_entries(), 2);
        assert_eq!(c.resolve_handle(alice), back);
        assert_eq!(c.forwarding_depth(), 1, "lookup compressed the chain");

        // Status surfaces the table; bob is untouched.
        let Response::Status(status) = c.apply(Command::Status, 0) else {
            panic!("status failed");
        };
        assert_eq!(status.forwarding_entries, 2);
        assert_eq!(status.tenants, 2);

        // Leaving through the *oldest* alias retires the whole chain.
        let r = c.apply(Command::TenantLeave { tenant: alice }, 0);
        assert!(matches!(r, Response::TenantLeft { .. }), "{r:?}");
        assert_eq!(c.forwarding_entries(), 0, "leave purges dead aliases");
        let r = c.apply(Command::TenantLeave { tenant: alice }, 0);
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::UnknownTenant,
                    ..
                }
            ),
            "{r:?}"
        );
        let r = c.apply(Command::TenantLeave { tenant: bob }, 0);
        assert!(matches!(r, Response::TenantLeft { .. }), "{r:?}");
    }

    #[test]
    fn migrate_rejects_bad_shards_and_self_moves() {
        let mut c = coordinator(2);
        let alice = join(&mut c, "alice");
        let r = c.apply(
            Command::MigrateTenant {
                tenant: alice,
                shard: 7,
            },
            0,
        );
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::InvalidArgument,
                    ..
                }
            ),
            "{r:?}"
        );
        let r = c.apply(
            Command::MigrateTenant {
                tenant: alice,
                shard: sharded::shard_of(alice),
            },
            0,
        );
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::InvalidArgument,
                    ..
                }
            ),
            "self-move: {r:?}"
        );
        let r = c.apply(
            Command::MigrateTenant {
                tenant: 999,
                shard: 1,
            },
            0,
        );
        assert!(
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::UnknownTenant,
                    ..
                }
            ),
            "{r:?}"
        );
        assert_eq!(c.forwarding_entries(), 0);
    }

    #[test]
    fn host_handles_bypass_tenant_forwarding() {
        let mut c = coordinator(2);
        let alice = join(&mut c, "alice");
        assert_eq!(alice, 1, "first tenant handle is 1 on shard 0");
        let r = c.apply(
            Command::MigrateTenant {
                tenant: alice,
                shard: 1,
            },
            0,
        );
        assert!(matches!(r, Response::TenantMigrated { .. }), "{r:?}");
        // The forwarding table now maps the *tenant* handle 1.  Host handle 1
        // (shard 0's first paper-cluster host) is a different object that
        // happens to share the bits — removing it must hit the host, not
        // chase the tenant alias onto the wrong shard.
        let r = c.apply(Command::RemoveHost { handle: 1 }, 0);
        assert!(
            matches!(r, Response::HostRemoved { host: 1 }),
            "host handle must not resolve through tenant forwarding: {r:?}"
        );
    }

    #[test]
    fn rebalance_flattens_a_skewed_federation() {
        let mut c = coordinator(2);
        let handles: Vec<u64> = (0..6).map(|i| join(&mut c, &format!("t{i}"))).collect();
        // Drain shard 0: the tenants that landed there leave, stranding all
        // remaining load on shard 1 — exactly the imbalance uneven churn
        // produces under least-loaded placement.
        for &h in handles.iter().filter(|&&h| sharded::shard_of(h) == 0) {
            c.apply(Command::TenantLeave { tenant: h }, 0);
        }
        let Response::Rebalanced(report) = c.apply(Command::Rebalance, 0) else {
            panic!("rebalance failed");
        };
        assert_eq!(report.policy, "threshold");
        assert!(report.imbalance_before > report.threshold);
        assert!(
            report.imbalance_after <= report.threshold,
            "spread {} should be within {}",
            report.imbalance_after,
            report.threshold
        );
        assert!(!report.moves.is_empty());
        for m in &report.moves {
            assert_eq!((m.from, m.to), (1, 0));
            // Moved tenants' old handles forward to their new ones.
            assert_eq!(c.resolve_handle(m.previous), m.tenant);
        }
        // A second pass plans nothing — no oscillation.
        let Response::Rebalanced(again) = c.apply(Command::Rebalance, 0) else {
            panic!("rebalance failed");
        };
        assert!(again.moves.is_empty(), "{again:?}");
    }

    #[test]
    fn rebalance_skips_full_targets_instead_of_aborting() {
        use oef_service::ServiceLimits;
        let mut c = ShardCoordinator::new(
            vec![
                ClusterTopology::paper_cluster(),
                ClusterTopology::paper_cluster(),
            ],
            ServiceConfig {
                limits: ServiceLimits {
                    max_tenants: 3,
                    ..ServiceLimits::default()
                },
                ..ServiceConfig::default()
            },
            placement_from_name("least-loaded").unwrap(),
        )
        .unwrap();
        // Both shards at their tenant quota; shard 1 heavily job-loaded, so
        // the weighted spread exceeds the threshold but every planned move
        // targets a full shard.
        let handles: Vec<u64> = (0..6).map(|i| join(&mut c, &format!("t{i}"))).collect();
        for &h in handles.iter().filter(|&&h| sharded::shard_of(h) == 1) {
            for _ in 0..5 {
                submit(&mut c, h);
            }
        }
        let Response::Rebalanced(report) = c.apply(Command::Rebalance, 0) else {
            panic!("a quota-blocked pass must still reply Rebalanced");
        };
        assert!(report.imbalance_before > report.threshold, "{report:?}");
        assert!(report.moves.is_empty(), "{report:?}");
        assert_eq!(c.tenants_migrated(), 0);
    }

    #[test]
    fn forwarding_and_rebalancer_survive_the_snapshot() {
        let mut c = coordinator(2);
        let alice = join(&mut c, "alice");
        join(&mut c, "bob");
        let job = submit(&mut c, alice);
        let target = 1 - sharded::shard_of(alice);
        let Response::TenantMigrated { tenant: fresh, .. } = c.apply(
            Command::MigrateTenant {
                tenant: alice,
                shard: target,
            },
            0,
        ) else {
            panic!("migrate failed");
        };
        let Response::Snapshot { snapshot } = c.apply(Command::Snapshot, 0) else {
            panic!("snapshot failed");
        };
        let mut restored = ShardCoordinator::from_federated_json(&snapshot).unwrap();
        assert_eq!(restored.forwarding_entries(), 1);
        assert_eq!(restored.resolve_handle(alice), fresh);
        assert_eq!(
            restored.rebalancer_config(),
            c.rebalancer_config(),
            "rebalancer config rides in the envelope"
        );
        // The pre-migration handle and job id keep working after restore.
        let r = restored.apply(Command::JobFinished { tenant: alice, job }, 0);
        assert!(
            matches!(r, Response::JobFinished { tenant, .. } if tenant == fresh),
            "{r:?}"
        );

        // A corrupted (cyclic) forwarding table is refused, not chased.
        let cyclic = snapshot.replace(
            &format!("\"forwarding\":[{{\"from\":{alice},\"to\":{fresh}}}]"),
            &format!(
                "\"forwarding\":[{{\"from\":{alice},\"to\":{fresh}}},\
                 {{\"from\":{fresh},\"to\":{alice}}}]"
            ),
        );
        assert_ne!(cyclic, snapshot, "fixture must actually corrupt");
        let err = ShardCoordinator::from_federated_json(&cyclic).unwrap_err();
        let ServiceError::BadSnapshot(reason) = err else {
            panic!("expected BadSnapshot");
        };
        assert!(reason.contains("cycle"), "reason: {reason}");
    }

    #[test]
    fn v3_snapshots_are_pointed_at_the_migration_tool() {
        let mut c = coordinator(2);
        let Response::Snapshot { snapshot } = c.apply(Command::Snapshot, 0) else {
            panic!("snapshot failed");
        };
        let v3 = snapshot.replace("\"version\":5", "\"version\":3");
        assert_ne!(v3, snapshot, "fixture must actually downgrade");
        let err = ShardCoordinator::from_federated_json(&v3).unwrap_err();
        let ServiceError::BadSnapshot(reason) = err else {
            panic!("expected BadSnapshot");
        };
        assert!(reason.contains("migrate-snapshot"), "reason: {reason}");
    }

    #[test]
    fn v4_snapshots_are_pointed_at_the_migration_tool() {
        let mut c = coordinator(2);
        let Response::Snapshot { snapshot } = c.apply(Command::Snapshot, 0) else {
            panic!("snapshot failed");
        };
        let v4 = snapshot
            .replace("\"version\":5", "\"version\":4")
            .replace(",\"journal_seq\":0", "");
        assert_ne!(v4, snapshot, "fixture must actually downgrade");
        let err = ShardCoordinator::from_federated_json(&v4).unwrap_err();
        let ServiceError::BadSnapshot(reason) = err else {
            panic!("expected BadSnapshot");
        };
        assert!(reason.contains("migrate-snapshot"), "reason: {reason}");
        assert!(reason.contains("journal"), "reason: {reason}");
    }

    #[test]
    fn rebalance_trail_records_attempted_moves() {
        let mut c = coordinator(2);
        let handles: Vec<u64> = (0..6).map(|i| join(&mut c, &format!("t{i}"))).collect();
        for &h in handles.iter().filter(|&&h| sharded::shard_of(h) == 0) {
            c.apply(Command::TenantLeave { tenant: h }, 0);
        }
        let Response::Rebalanced(report) = c.apply(Command::Rebalance, 0) else {
            panic!("rebalance failed");
        };
        assert!(!report.moves.is_empty());
        let trail = c.drain_rebalance_trail();
        assert_eq!(
            trail,
            report
                .moves
                .iter()
                .map(|m| (m.previous, m.to))
                .collect::<Vec<_>>(),
            "trail lists each attempt by its pre-move wire handle"
        );
        assert!(
            c.drain_rebalance_trail().is_empty(),
            "draining is destructive"
        );
        // Replaying the trail as MigrateTenant commands on a twin reproduces
        // the exact same moves — the journal's recovery path.
        let mut twin = coordinator(2);
        let twin_handles: Vec<u64> = (0..6).map(|i| join(&mut twin, &format!("t{i}"))).collect();
        assert_eq!(twin_handles, handles);
        for &h in twin_handles.iter().filter(|&&h| sharded::shard_of(h) == 0) {
            twin.apply(Command::TenantLeave { tenant: h }, 0);
        }
        for &(tenant, shard) in &trail {
            let r = twin.apply(Command::MigrateTenant { tenant, shard }, 0);
            assert!(matches!(r, Response::TenantMigrated { .. }), "{r:?}");
        }
        for (a, b) in c.shards().iter().zip(twin.shards()) {
            assert_eq!(a.tenant_handles(), b.tenant_handles());
        }
    }

    #[test]
    fn journal_seq_rides_in_the_snapshot() {
        let mut c = coordinator(2);
        join(&mut c, "alice");
        c.set_journal_seq(41);
        let Response::Snapshot { snapshot } = c.apply(Command::Snapshot, 0) else {
            panic!("snapshot failed");
        };
        assert!(snapshot.contains("\"journal_seq\":41"), "{snapshot}");
        let restored = ShardCoordinator::from_federated_json(&snapshot).unwrap();
        assert_eq!(restored.journal_seq(), 41);
    }

    #[test]
    fn shutdown_blocks_mutations_but_not_probes() {
        let mut c = coordinator(2);
        assert!(matches!(
            c.apply(Command::Shutdown, 0),
            Response::ShuttingDown
        ));
        assert!(c.is_shutting_down());
        let r = c.apply(Command::Tick, 0);
        assert!(matches!(
            r,
            Response::Error {
                code: ErrorCode::ShuttingDown,
                ..
            }
        ));
        assert!(matches!(c.apply(Command::Status, 0), Response::Status(_)));
    }
}
