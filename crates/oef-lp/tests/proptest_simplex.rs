//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random bounded LPs with `<=` constraints and non-negative
//! right-hand sides (always feasible: the origin is feasible, and a box constraint per
//! variable keeps them bounded).  Check that the reported solution is feasible, that
//! the objective matches the primal values, and that it is at least as good as a
//! brute-force sample of feasible points.

use oef_lp::{ConstraintOp, LpError, Problem, Sense};
use proptest::prelude::*;

/// A randomly generated, always-feasible, always-bounded maximisation LP.
#[derive(Debug, Clone)]
struct RandomLp {
    objective: Vec<f64>,
    /// `constraints[i] = (coefficients, rhs)` encoding `coeffs . x <= rhs`.
    constraints: Vec<(Vec<f64>, f64)>,
    /// Upper bound per variable (a `x_i <= ub_i` constraint).
    upper_bounds: Vec<f64>,
}

fn random_lp(max_vars: usize, max_constraints: usize) -> impl Strategy<Value = RandomLp> {
    (2..=max_vars, 1..=max_constraints).prop_flat_map(|(n, m)| {
        let objective = proptest::collection::vec(0.0..10.0f64, n);
        let upper_bounds = proptest::collection::vec(0.5..5.0f64, n);
        let constraints =
            proptest::collection::vec((proptest::collection::vec(0.0..4.0f64, n), 1.0..20.0f64), m);
        (objective, upper_bounds, constraints).prop_map(|(objective, upper_bounds, constraints)| {
            RandomLp {
                objective,
                constraints,
                upper_bounds,
            }
        })
    })
}

fn build_problem(lp: &RandomLp) -> (Problem, Vec<oef_lp::Variable>) {
    let mut p = Problem::new(Sense::Maximize);
    let vars = p.add_variables("x", lp.objective.len());
    for (v, c) in vars.iter().zip(lp.objective.iter()) {
        p.set_objective_coefficient(*v, *c);
    }
    for (coeffs, rhs) in &lp.constraints {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        p.add_constraint(&terms, ConstraintOp::Le, *rhs);
    }
    for (v, ub) in vars.iter().zip(lp.upper_bounds.iter()) {
        p.add_constraint(&[(*v, 1.0)], ConstraintOp::Le, *ub);
    }
    (p, vars)
}

fn is_feasible(lp: &RandomLp, x: &[f64], tol: f64) -> bool {
    if x.iter().any(|&v| v < -tol) {
        return false;
    }
    for (coeffs, rhs) in &lp.constraints {
        let lhs: f64 = coeffs.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        if lhs > rhs + tol {
            return false;
        }
    }
    for (v, ub) in x.iter().zip(lp.upper_bounds.iter()) {
        if *v > ub + tol {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solution_is_feasible_and_objective_consistent(lp in random_lp(6, 6)) {
        let (p, vars) = build_problem(&lp);
        let sol = p.solve().expect("bounded feasible LP must solve");
        let x: Vec<f64> = vars.iter().map(|v| sol.value(*v)).collect();
        prop_assert!(is_feasible(&lp, &x, 1e-6), "solver returned infeasible point {x:?}");
        let recomputed: f64 = lp.objective.iter().zip(x.iter()).map(|(c, v)| c * v).sum();
        prop_assert!((recomputed - sol.objective_value()).abs() < 1e-6);
    }

    #[test]
    fn solution_dominates_random_feasible_points(lp in random_lp(5, 4), seeds in proptest::collection::vec(0.0..1.0f64, 50)) {
        let (p, vars) = build_problem(&lp);
        let sol = p.solve().expect("bounded feasible LP must solve");
        let n = vars.len();
        // Sample candidate points inside the per-variable boxes and keep feasible ones;
        // none of them may beat the reported optimum.
        for chunk in seeds.chunks(n) {
            if chunk.len() < n {
                continue;
            }
            let candidate: Vec<f64> =
                chunk.iter().zip(lp.upper_bounds.iter()).map(|(s, ub)| s * ub).collect();
            if is_feasible(&lp, &candidate, 0.0) {
                let value: f64 =
                    lp.objective.iter().zip(candidate.iter()).map(|(c, v)| c * v).sum();
                prop_assert!(value <= sol.objective_value() + 1e-6,
                    "random feasible point beats the reported optimum");
            }
        }
    }

    #[test]
    fn scaling_objective_scales_optimum(lp in random_lp(5, 4), factor in 0.5..4.0f64) {
        let (p, _) = build_problem(&lp);
        let base = p.solve().unwrap().objective_value();

        let mut scaled = lp.clone();
        for c in &mut scaled.objective {
            *c *= factor;
        }
        let (p2, _) = build_problem(&scaled);
        let scaled_value = p2.solve().unwrap().objective_value();
        prop_assert!((scaled_value - factor * base).abs() < 1e-5 * (1.0 + base.abs()));
    }

    #[test]
    fn tightening_a_bound_never_improves_optimum(lp in random_lp(5, 4), which in 0usize..5, shrink in 0.1..0.9f64) {
        let (p, _) = build_problem(&lp);
        let base = p.solve().unwrap().objective_value();

        let mut tightened = lp.clone();
        let idx = which % tightened.upper_bounds.len();
        tightened.upper_bounds[idx] *= shrink;
        let (p2, _) = build_problem(&tightened);
        let tightened_value = p2.solve().unwrap().objective_value();
        prop_assert!(tightened_value <= base + 1e-6);
    }
}

#[test]
fn infeasible_system_is_detected_even_with_many_variables() {
    let mut p = Problem::new(Sense::Maximize);
    let vars = p.add_variables("x", 10);
    for v in &vars {
        p.set_objective_coefficient(*v, 1.0);
    }
    let all: Vec<_> = vars.iter().map(|v| (*v, 1.0)).collect();
    p.add_constraint(&all, ConstraintOp::Le, 1.0);
    p.add_constraint(&all, ConstraintOp::Ge, 2.0);
    assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
}

#[test]
fn equality_chain_mirrors_oef_equal_throughput() {
    // Five users with speedups (1, i+1) sharing one slow and one fast GPU; equal
    // throughput must hold pairwise at the optimum of the non-cooperative program.
    let n = 5;
    let mut p = Problem::new(Sense::Maximize);
    let mut x = Vec::new();
    for l in 0..n {
        x.push((
            p.add_variable(format!("x{l}0")),
            p.add_variable(format!("x{l}1")),
        ));
    }
    for (l, (slow, fast)) in x.iter().enumerate() {
        p.set_objective_coefficient(*slow, 1.0);
        p.set_objective_coefficient(*fast, (l + 2) as f64);
    }
    let slow_sum: Vec<_> = x.iter().map(|(s, _)| (*s, 1.0)).collect();
    let fast_sum: Vec<_> = x.iter().map(|(_, f)| (*f, 1.0)).collect();
    p.add_constraint(&slow_sum, ConstraintOp::Le, 4.0);
    p.add_constraint(&fast_sum, ConstraintOp::Le, 4.0);
    for l in 1..n {
        let (s0, f0) = x[0];
        let (sl, fl) = x[l];
        p.add_constraint(
            &[(s0, 1.0), (f0, 2.0), (sl, -1.0), (fl, -((l + 2) as f64))],
            ConstraintOp::Eq,
            0.0,
        );
    }
    let sol = p.solve().unwrap();
    let eff: Vec<f64> = x
        .iter()
        .enumerate()
        .map(|(l, (s, f))| sol.value(*s) + (l + 2) as f64 * sol.value(*f))
        .collect();
    for e in &eff {
        assert!((e - eff[0]).abs() < 1e-6, "unequal throughput {eff:?}");
    }
    assert!(sol.objective_value() > 0.0);
}
