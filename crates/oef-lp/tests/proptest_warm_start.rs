//! Property-based agreement tests between the warm-started [`SolverContext`]
//! and the cold dense reference solver.
//!
//! Strategy: generate a random bounded, feasible LP, then walk a random
//! perturbation sequence over it (objective rescaling, right-hand-side
//! tightening/loosening, constraint-coefficient tweaks) that never changes the
//! problem *shape*.  Solve every step twice — once through a shared
//! `SolverContext` (warm after the first step) and once with the dense
//! two-phase reference — and require identical objectives (within 1e-6) plus
//! primal feasibility of the warm solution.

use oef_lp::{ConstraintOp, Problem, Sense, SolverContext, Variable};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomLp {
    objective: Vec<f64>,
    /// `constraints[i] = (coefficients, rhs)` encoding `coeffs . x <= rhs`.
    constraints: Vec<(Vec<f64>, f64)>,
    /// Upper bound per variable (an `x_i <= ub_i` constraint).
    upper_bounds: Vec<f64>,
    /// Optional `coeffs . x >= rhs` rows, feasible by construction.
    ge_rows: Vec<(Vec<f64>, f64)>,
}

/// One shape-preserving perturbation step.
#[derive(Debug, Clone)]
enum Perturbation {
    /// Scale every objective coefficient.
    Objective(f64),
    /// Scale the RHS of `<=` constraint `index % len` (stays positive).
    Rhs(usize, f64),
    /// Scale one coefficient inside one `<=` constraint.
    Coefficient(usize, usize, f64),
}

fn random_lp(max_vars: usize, max_constraints: usize) -> impl Strategy<Value = RandomLp> {
    (2..=max_vars, 1..=max_constraints, 0usize..=2).prop_flat_map(|(n, m, n_ge)| {
        let objective = proptest::collection::vec(0.0..10.0f64, n);
        let upper_bounds = proptest::collection::vec(0.5..5.0f64, n);
        let constraints =
            proptest::collection::vec((proptest::collection::vec(0.0..4.0f64, n), 1.0..20.0f64), m);
        let ge_coeffs = proptest::collection::vec(proptest::collection::vec(0.1..2.0f64, n), n_ge);
        let ge_fractions = proptest::collection::vec(0.1..0.9f64, n_ge);
        (
            objective,
            upper_bounds,
            constraints,
            ge_coeffs,
            ge_fractions,
        )
            .prop_map(
                |(objective, upper_bounds, constraints, ge_coeffs, ge_fractions)| {
                    // A `>=` row is kept feasible by construction: its RHS is a
                    // fraction of the row value at the midpoint of the variable
                    // boxes, a point that satisfies every `x_i <= ub_i`.  The
                    // `<=` rows may still cut that point off, in which case the
                    // instance can be infeasible — the test skips those instances
                    // (both solvers must agree on infeasibility, though).
                    let ge_rows = ge_coeffs
                        .into_iter()
                        .zip(ge_fractions)
                        .map(|(coeffs, fraction)| {
                            let midpoint_value: f64 = coeffs
                                .iter()
                                .zip(upper_bounds.iter())
                                .map(|(c, ub)| c * ub / 2.0)
                                .sum();
                            let rhs = fraction * midpoint_value;
                            (coeffs, rhs)
                        })
                        .collect();
                    RandomLp {
                        objective,
                        constraints,
                        upper_bounds,
                        ge_rows,
                    }
                },
            )
    })
}

fn perturbations(steps: usize) -> impl Strategy<Value = Vec<Perturbation>> {
    proptest::collection::vec(
        (0usize..3, 0usize..8, 0usize..8, 0.6..1.6f64).prop_map(
            |(kind, a, b, factor)| match kind {
                0 => Perturbation::Objective(factor),
                1 => Perturbation::Rhs(a, factor),
                _ => Perturbation::Coefficient(a, b, factor),
            },
        ),
        steps,
    )
}

fn build_problem(lp: &RandomLp) -> (Problem, Vec<Variable>) {
    let mut p = Problem::new(Sense::Maximize);
    let vars = p.add_variables("x", lp.objective.len());
    for (v, c) in vars.iter().zip(lp.objective.iter()) {
        p.set_objective_coefficient(*v, *c);
    }
    for (coeffs, rhs) in &lp.constraints {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        p.add_constraint(&terms, ConstraintOp::Le, *rhs);
    }
    for (v, ub) in vars.iter().zip(lp.upper_bounds.iter()) {
        p.add_constraint(&[(*v, 1.0)], ConstraintOp::Le, *ub);
    }
    for (coeffs, rhs) in &lp.ge_rows {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        p.add_constraint(&terms, ConstraintOp::Ge, *rhs);
    }
    (p, vars)
}

/// Applies one perturbation to both the abstract LP and the built problem.
fn apply(lp: &mut RandomLp, p: &mut Problem, vars: &[Variable], step: &Perturbation) {
    match step {
        Perturbation::Objective(factor) => {
            for (i, c) in lp.objective.iter_mut().enumerate() {
                *c *= factor;
                p.update_objective_coefficient(vars[i], *c);
            }
        }
        Perturbation::Rhs(index, factor) => {
            if lp.constraints.is_empty() {
                return;
            }
            let i = index % lp.constraints.len();
            lp.constraints[i].1 *= factor;
            p.update_rhs(i, lp.constraints[i].1);
        }
        Perturbation::Coefficient(ci, vi, factor) => {
            if lp.constraints.is_empty() {
                return;
            }
            let ci = ci % lp.constraints.len();
            let vi = vi % lp.objective.len();
            lp.constraints[ci].0[vi] *= factor;
            p.update_constraint_coefficient(ci, vars[vi], lp.constraints[ci].0[vi]);
        }
    }
}

fn is_feasible(lp: &RandomLp, x: &[f64], tol: f64) -> bool {
    if x.iter().any(|&v| v < -tol) {
        return false;
    }
    for (coeffs, rhs) in &lp.constraints {
        let lhs: f64 = coeffs.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        if lhs > rhs + tol {
            return false;
        }
    }
    for (v, ub) in x.iter().zip(lp.upper_bounds.iter()) {
        if *v > ub + tol {
            return false;
        }
    }
    for (coeffs, rhs) in &lp.ge_rows {
        let lhs: f64 = coeffs.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        if lhs < rhs - tol {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn warm_context_agrees_with_dense_across_perturbation_sequences(
        lp in random_lp(6, 5),
        steps in perturbations(5),
    ) {
        let (mut p, vars) = build_problem(&lp);
        let mut lp = lp;
        let mut ctx = SolverContext::new();

        for (step_idx, step) in std::iter::once(None)
            .chain(steps.iter().map(Some))
            .enumerate()
        {
            if let Some(step) = step {
                apply(&mut lp, &mut p, &vars, step);
            }
            let dense = p.solve();
            let warm = ctx.solve(&p);
            match (dense, warm) {
                (Ok(dense), Ok(warm)) => {
                    let scale = 1.0 + dense.objective_value().abs();
                    prop_assert!(
                        (warm.objective_value() - dense.objective_value()).abs() < 1e-6 * scale,
                        "step {step_idx}: warm {} vs dense {}",
                        warm.objective_value(),
                        dense.objective_value()
                    );
                    let x: Vec<f64> = vars.iter().map(|v| warm.value(*v)).collect();
                    prop_assert!(
                        is_feasible(&lp, &x, 1e-6),
                        "step {step_idx}: warm solution {x:?} infeasible"
                    );
                }
                (Err(dense_err), warm_result) => {
                    // Perturbations can push the `>=` rows past the `<=` box:
                    // both solvers must then agree the program is infeasible.
                    prop_assert!(
                        matches!(warm_result, Err(ref e) if *e == dense_err),
                        "step {step_idx}: dense {dense_err:?} but warm {warm_result:?}"
                    );
                }
                (Ok(dense), Err(warm_err)) => {
                    return Err(TestCaseError::fail(format!(
                        "step {step_idx}: dense solved to {} but warm failed with {warm_err:?}",
                        dense.objective_value()
                    )));
                }
            }
        }
    }

    #[test]
    fn repeated_identical_solves_stay_warm_and_exact(lp in random_lp(5, 4)) {
        let (p, _) = build_problem(&lp);
        let mut ctx = SolverContext::new();
        let first = match ctx.solve(&p) {
            Ok(s) => s,
            Err(e) => {
                // The random `>=` rows can contradict the `<=` cuts; both
                // solvers must agree, and there is nothing to warm-start.
                let dense = p.solve();
                prop_assert!(
                    matches!(dense, Err(ref d) if *d == e),
                    "context {e:?} but dense {dense:?}"
                );
                return Ok(());
            }
        };
        for _ in 0..3 {
            let again = match ctx.solve(&p) {
                Ok(s) => s,
                Err(e) => return Err(TestCaseError::fail(format!("{e:?} on {lp:?}"))),
            };
            prop_assert!(again.stats().warm_start);
            prop_assert_eq!(again.stats().iterations, 0);
            let scale = 1.0 + first.objective_value().abs();
            prop_assert!(
                (again.objective_value() - first.objective_value()).abs() < 1e-9 * scale
            );
        }
        prop_assert_eq!(ctx.stats().cold_solves, 1);
        prop_assert_eq!(ctx.stats().warm_solves, 3);
    }
}
