//! Property-based agreement tests across *churn-delta* sequences: random
//! tenant joins ([`Problem::add_tenant_rows`]) and leaves
//! ([`Problem::remove_tenant_rows`]) interleaved with coefficient
//! perturbations, solved after every edit through one shared
//! [`SolverContext`].
//!
//! Three solutions must agree (objectives within 1e-6) at every step:
//!
//! 1. the context solve, which may serve the step warm by remapping the
//!    cached basis across the journaled shape edit;
//! 2. the dense two-phase reference on the *churned* problem — same
//!    `Problem` value, no cache, catches solver bugs;
//! 3. the dense reference on a problem rebuilt from scratch out of the
//!    abstract model — catches *edit* bugs, where `remove_tenant_rows`
//!    leaves a stale term or shifts an index wrong and both solvers above
//!    faithfully solve the corrupted program.

use oef_lp::{ConstraintOp, LinearExpr, Problem, Sense, SolverContext, Variable};
use proptest::prelude::*;

/// One tenant block: `k` objective coefficients plus a budget row
/// `sum_j x[t][j] <= budget`.
#[derive(Debug, Clone)]
struct TenantBlock {
    coeffs: Vec<f64>,
    budget: f64,
}

/// The abstract program: shared capacity rows `sum_t x[t][j] <= cap[j]`
/// (always rows `0..k`), one budget row per tenant.  Feasible (x = 0) and
/// bounded (budgets cap every variable) by construction, so every step must
/// solve to optimality.
#[derive(Debug, Clone)]
struct Model {
    caps: Vec<f64>,
    tenants: Vec<TenantBlock>,
}

#[derive(Debug, Clone)]
enum ChurnStep {
    /// A tenant joins with the given coefficients and budget.
    Join(TenantBlock),
    /// Tenant `index % len` leaves (skipped when only one tenant remains).
    Leave(usize),
    /// Scale one tenant's objective coefficients — a non-shape edit riding
    /// between the shape edits, as speedup refreshes do in the policies.
    Scale(usize, f64),
}

fn tenant(k: usize) -> impl Strategy<Value = TenantBlock> {
    (proptest::collection::vec(0.1..5.0f64, k), 0.5..4.0f64)
        .prop_map(|(coeffs, budget)| TenantBlock { coeffs, budget })
}

fn model(k: usize) -> impl Strategy<Value = Model> {
    (
        proptest::collection::vec(2.0..8.0f64, k),
        proptest::collection::vec(tenant(k), 2..=4),
    )
        .prop_map(|(caps, tenants)| Model { caps, tenants })
}

fn churn_steps(k: usize, steps: usize) -> impl Strategy<Value = Vec<ChurnStep>> {
    proptest::collection::vec(
        (0usize..4, tenant(k), 0usize..8, 0.5..1.8f64).prop_map(|(kind, block, index, factor)| {
            match kind {
                0 | 1 => ChurnStep::Join(block),
                2 => ChurnStep::Leave(index),
                _ => ChurnStep::Scale(index, factor),
            }
        }),
        steps,
    )
}

/// Tenant `slot`'s variable handles under the tenant-major layout: every
/// block holds exactly `k` variables, so positions are arithmetic even
/// though stored handles are invalidated by removals.
fn block_vars(p: &Problem, slot: usize, k: usize) -> Vec<Variable> {
    (slot * k..(slot + 1) * k)
        .map(|i| p.variable(i).expect("block variable in range"))
        .collect()
}

/// Appends one tenant block to the live problem: `k` fresh variables, their
/// budget row, and their terms in the capacity rows `0..k`.
fn join(p: &mut Problem, block: &TenantBlock) -> usize {
    let budget = block.budget;
    let (vars, rows) = p.add_tenant_rows("t", block.coeffs.len(), |vars| {
        let mut expr = LinearExpr::new();
        for v in vars {
            expr.add_term(*v, 1.0);
        }
        vec![(expr, ConstraintOp::Le, budget)]
    });
    for (j, v) in vars.iter().enumerate() {
        p.set_objective_coefficient(*v, block.coeffs[j]);
        p.update_constraint_coefficient(j, *v, 1.0);
    }
    rows[0]
}

/// Builds the live problem plus the per-tenant budget-row bookkeeping.
fn build(model: &Model) -> (Problem, Vec<usize>) {
    let mut p = Problem::new(Sense::Maximize);
    // Capacity rows first (empty; join() fills in each tenant's terms), so
    // they keep indices 0..k across all churn.
    for cap in &model.caps {
        p.add_constraint(&[], ConstraintOp::Le, *cap);
    }
    let rows = model.tenants.iter().map(|t| join(&mut p, t)).collect();
    (p, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn context_agrees_with_dense_across_churn_sequences(
        model in (2usize..=3).prop_flat_map(model),
        steps in (2usize..=3).prop_flat_map(|k| churn_steps(k, 6)),
    ) {
        let k = model.caps.len();
        let mut model = model;
        let (mut p, mut tenant_rows) = build(&model);
        let mut ctx = SolverContext::new();

        for (step_idx, step) in std::iter::once(None).chain(steps.iter().map(Some)).enumerate() {
            match step {
                None => {}
                Some(ChurnStep::Join(block)) => {
                    // Steps are drawn for a fixed arity; resize the block to
                    // this model's k so narrower draws still exercise joins.
                    let mut block = block.clone();
                    block.coeffs.resize(k, 1.0);
                    tenant_rows.push(join(&mut p, &block));
                    model.tenants.push(block);
                }
                // A departure that would empty the cluster degrades to a
                // no-op step — the step still solves, keeping the counter
                // accounting below exact.
                Some(ChurnStep::Leave(index)) if model.tenants.len() > 1 => {
                    let slot = index % model.tenants.len();
                    let vars = block_vars(&p, slot, k);
                    let row = tenant_rows[slot];
                    p.remove_tenant_rows(&vars, &[row]);
                    model.tenants.remove(slot);
                    tenant_rows.remove(slot);
                    for r in tenant_rows.iter_mut() {
                        if *r > row {
                            *r -= 1;
                        }
                    }
                }
                Some(ChurnStep::Leave(_)) => {}
                Some(ChurnStep::Scale(index, factor)) => {
                    let slot = index % model.tenants.len();
                    let vars = block_vars(&p, slot, k);
                    for (j, v) in vars.iter().enumerate() {
                        model.tenants[slot].coeffs[j] *= factor;
                        p.update_objective_coefficient(*v, model.tenants[slot].coeffs[j]);
                    }
                }
            }

            let warm = ctx.solve(&p).map_err(|e| {
                TestCaseError::fail(format!("step {step_idx}: context solve failed: {e:?}"))
            })?;
            let dense = p.solve().map_err(|e| {
                TestCaseError::fail(format!("step {step_idx}: dense solve failed: {e:?}"))
            })?;
            let (rebuilt, _) = build(&model);
            let oracle = rebuilt.solve().map_err(|e| {
                TestCaseError::fail(format!("step {step_idx}: rebuilt solve failed: {e:?}"))
            })?;

            let scale = 1.0 + oracle.objective_value().abs();
            prop_assert!(
                (warm.objective_value() - dense.objective_value()).abs() < 1e-6 * scale,
                "step {step_idx}: context {} vs dense-on-churned {}",
                warm.objective_value(),
                dense.objective_value()
            );
            prop_assert!(
                (dense.objective_value() - oracle.objective_value()).abs() < 1e-6 * scale,
                "step {step_idx}: churn edits corrupted the program — churned {} vs rebuilt {}",
                dense.objective_value(),
                oracle.objective_value()
            );
        }

        // Counter sanity: every solve is accounted warm or cold, and churn
        // repairs never exceed the warm total they are a subset of.
        let stats = ctx.stats();
        prop_assert_eq!(stats.warm_solves + stats.cold_solves, 1 + steps.len() as u64);
        prop_assert!(stats.churn_repairs <= stats.warm_solves);
    }
}
