//! Property-based conservation of per-tenant solver-work attribution across
//! *churn-delta* sequences: random joins, leaves and coefficient scalings
//! (the same model as `proptest_churn`), solved through one shared
//! [`SolverContext`] with owner maps re-declared before every solve (shape
//! edits clear them by design).
//!
//! The pinned invariant, exact to the last integer: summing every owner
//! slot's [`TenantWork`] plus the unattributed bucket over all rounds
//! reproduces the solver's own [`ContextStats`] deltas — every eta append
//! is one attributed pivot and every refactorization is charged somewhere.
//! No work leaks out of the report, none is double-counted into it, no
//! matter how tenants churn between solves.

use oef_lp::{
    AttributionReport, ConstraintOp, LinearExpr, Problem, Sense, SolverContext, Variable, NO_OWNER,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TenantBlock {
    coeffs: Vec<f64>,
    budget: f64,
}

#[derive(Debug, Clone)]
struct Model {
    caps: Vec<f64>,
    tenants: Vec<TenantBlock>,
}

#[derive(Debug, Clone)]
enum ChurnStep {
    Join(TenantBlock),
    Leave(usize),
    Scale(usize, f64),
}

fn tenant(k: usize) -> impl Strategy<Value = TenantBlock> {
    (proptest::collection::vec(0.1..5.0f64, k), 0.5..4.0f64)
        .prop_map(|(coeffs, budget)| TenantBlock { coeffs, budget })
}

fn model(k: usize) -> impl Strategy<Value = Model> {
    (
        proptest::collection::vec(2.0..8.0f64, k),
        proptest::collection::vec(tenant(k), 2..=4),
    )
        .prop_map(|(caps, tenants)| Model { caps, tenants })
}

fn churn_steps(k: usize, steps: usize) -> impl Strategy<Value = Vec<ChurnStep>> {
    proptest::collection::vec(
        (0usize..4, tenant(k), 0usize..8, 0.5..1.8f64).prop_map(|(kind, block, index, factor)| {
            match kind {
                0 | 1 => ChurnStep::Join(block),
                2 => ChurnStep::Leave(index),
                _ => ChurnStep::Scale(index, factor),
            }
        }),
        steps,
    )
}

fn block_vars(p: &Problem, slot: usize, k: usize) -> Vec<Variable> {
    (slot * k..(slot + 1) * k)
        .map(|i| p.variable(i).expect("block variable in range"))
        .collect()
}

fn join(p: &mut Problem, block: &TenantBlock) -> usize {
    let budget = block.budget;
    let (vars, rows) = p.add_tenant_rows("t", block.coeffs.len(), |vars| {
        let mut expr = LinearExpr::new();
        for v in vars {
            expr.add_term(*v, 1.0);
        }
        vec![(expr, ConstraintOp::Le, budget)]
    });
    for (j, v) in vars.iter().enumerate() {
        p.set_objective_coefficient(*v, block.coeffs[j]);
        p.update_constraint_coefficient(j, *v, 1.0);
    }
    rows[0]
}

fn build(model: &Model) -> (Problem, Vec<usize>) {
    let mut p = Problem::new(Sense::Maximize);
    for cap in &model.caps {
        p.add_constraint(&[], ConstraintOp::Le, *cap);
    }
    let rows = model.tenants.iter().map(|t| join(&mut p, t)).collect();
    (p, rows)
}

/// Tenant-major owner maps for the current population: variable `i` belongs
/// to slot `i / k`; capacity rows `0..k` are shared; each budget row belongs
/// to the tenant whose departure would remove it.
fn declare_owners(p: &mut Problem, tenant_rows: &[usize], k: usize) {
    let tenants = tenant_rows.len();
    let var_owner: Vec<u32> = (0..tenants * k).map(|i| (i / k) as u32).collect();
    let mut row_owner = vec![NO_OWNER; k + tenants];
    for (slot, &row) in tenant_rows.iter().enumerate() {
        row_owner[row] = slot as u32;
    }
    p.set_attribution_owners(var_owner, row_owner);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn attribution_conserves_context_stats_across_churn(
        model in (2usize..=3).prop_flat_map(model),
        steps in (2usize..=3).prop_flat_map(|k| churn_steps(k, 6)),
    ) {
        let k = model.caps.len();
        let mut model = model;
        let (mut p, mut tenant_rows) = build(&model);
        let mut ctx = SolverContext::new();
        let mut acc = AttributionReport::default();
        let mut last = ctx.stats();

        for (step_idx, step) in std::iter::once(None).chain(steps.iter().map(Some)).enumerate() {
            match step {
                None => {}
                Some(ChurnStep::Join(block)) => {
                    let mut block = block.clone();
                    block.coeffs.resize(k, 1.0);
                    tenant_rows.push(join(&mut p, &block));
                    model.tenants.push(block);
                }
                Some(ChurnStep::Leave(index)) if model.tenants.len() > 1 => {
                    let slot = index % model.tenants.len();
                    let vars = block_vars(&p, slot, k);
                    let row = tenant_rows[slot];
                    p.remove_tenant_rows(&vars, &[row]);
                    model.tenants.remove(slot);
                    tenant_rows.remove(slot);
                    for r in tenant_rows.iter_mut() {
                        if *r > row {
                            *r -= 1;
                        }
                    }
                }
                Some(ChurnStep::Leave(_)) => {}
                Some(ChurnStep::Scale(index, factor)) => {
                    let slot = index % model.tenants.len();
                    let vars = block_vars(&p, slot, k);
                    for (j, v) in vars.iter().enumerate() {
                        model.tenants[slot].coeffs[j] *= factor;
                        p.update_objective_coefficient(*v, model.tenants[slot].coeffs[j]);
                    }
                }
            }

            declare_owners(&mut p, &tenant_rows, k);
            ctx.solve(&p).map_err(|e| {
                TestCaseError::fail(format!("step {step_idx}: context solve failed: {e:?}"))
            })?;
            let report = ctx.last_attribution().clone();
            prop_assert_eq!(
                report.slots.len(),
                model.tenants.len(),
                "step {}: one slot per declared owner",
                step_idx
            );

            // Exact per-step conservation against the solver's own counters.
            let now = ctx.stats();
            let total = report.total();
            prop_assert_eq!(
                total.pivots,
                now.eta_pivots - last.eta_pivots,
                "step {}: every eta append must be exactly one attributed pivot",
                step_idx
            );
            prop_assert_eq!(
                total.refactorizations,
                now.refactorizations - last.refactorizations,
                "step {}: every refactorization must be charged to exactly one bucket",
                step_idx
            );
            last = now;
            acc.merge(&report);
        }

        // Cumulative conservation: the merged per-tenant ledger reproduces
        // the context counters over the whole lifetime.
        let stats = ctx.stats();
        let lifetime = acc.total();
        prop_assert_eq!(lifetime.pivots, stats.eta_pivots);
        prop_assert_eq!(lifetime.refactorizations, stats.refactorizations);
        prop_assert!(
            lifetime.pivots == 0 || acc.slots.iter().any(|w| !w.is_zero()),
            "pivots happened but none landed on a tenant slot"
        );
    }
}
