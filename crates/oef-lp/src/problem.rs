//! Linear-program builder types.
//!
//! A [`Problem`] owns a set of non-negative decision variables, an objective and a
//! list of linear constraints.  Variables are referred to through the opaque
//! [`Variable`] handle returned by [`Problem::add_variable`].

use crate::error::LpError;
use crate::simplex::{self, SimplexOptions};
use crate::solution::Solution;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Mints per-process-unique problem lineage ids (see [`Problem::churn_instance`]).
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// Journal entries older than this are trimmed; a basis cached before the
/// trimmed horizon simply cold-solves, so the cap only bounds memory.
const JOURNAL_CAP: usize = 4096;

/// Attribution owner-slot sentinel: work on a variable or row carrying this
/// owner is charged to the shared "unattributed" bucket (capacity rows, rows
/// no single tenant owns).
pub const NO_OWNER: u32 = u32::MAX;

/// Optimisation direction of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Relational operator of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// Left-hand side must be less than or equal to the right-hand side.
    Le,
    /// Left-hand side must equal the right-hand side.
    Eq,
    /// Left-hand side must be greater than or equal to the right-hand side.
    Ge,
}

/// Handle to a decision variable of a [`Problem`].
///
/// Handles are plain indices; they are cheap to copy and can be stored in lookup
/// tables (for example the OEF crates keep a `(user, gpu_type) -> Variable` map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Variable(pub(crate) usize);

impl Variable {
    /// Raw index of this variable inside its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression `sum coefficient_i * variable_i`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearExpr {
    terms: Vec<(Variable, f64)>,
}

impl LinearExpr {
    /// Creates an empty expression.
    pub fn new() -> Self {
        Self { terms: Vec::new() }
    }

    /// Adds `coefficient * variable` to the expression, returning `self` for chaining.
    pub fn add_term(&mut self, variable: Variable, coefficient: f64) -> &mut Self {
        self.terms.push((variable, coefficient));
        self
    }

    /// Iterates over the `(variable, coefficient)` terms of the expression.
    pub fn terms(&self) -> impl Iterator<Item = (Variable, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// Number of terms in the expression.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl FromIterator<(Variable, f64)> for LinearExpr {
    fn from_iter<T: IntoIterator<Item = (Variable, f64)>>(iter: T) -> Self {
        Self {
            terms: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Variable, f64)> for LinearExpr {
    fn extend<T: IntoIterator<Item = (Variable, f64)>>(&mut self, iter: T) {
        self.terms.extend(iter);
    }
}

/// A single linear constraint `expr op rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Left-hand side expression.
    pub expr: LinearExpr,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side constant.
    pub rhs: f64,
    /// Optional label used in debugging output.
    pub name: Option<String>,
}

/// One shape-changing edit in a problem's churn journal.
///
/// `Remove*` indices are recorded in the coordinate space *at removal time*
/// (exactly the order they were applied), which lets
/// [`Problem::churn_maps_since`] replay the journal forward without any other
/// bookkeeping.
#[derive(Debug, Clone, PartialEq)]
enum ChurnOp {
    AddVars {
        count: usize,
    },
    AddRows {
        count: usize,
    },
    /// Sorted descending; applied back-to-front.
    RemoveVars {
        indices: Vec<usize>,
    },
    /// Sorted descending; applied back-to-front.
    RemoveRows {
        indices: Vec<usize>,
    },
}

/// Old→new index map across journaled churn: `map[old] == None` means the
/// entity was removed.
pub(crate) type ChurnMap = Vec<Option<usize>>;

/// A linear program over non-negative variables.
///
/// See the [crate-level documentation](crate) for a worked example.
///
/// # Churn deltas
///
/// Shape-changing edits — adding variables or constraints, and the batched
/// [`Problem::add_tenant_rows`] / [`Problem::remove_tenant_rows`] — are
/// recorded in an internal *churn journal*.  A [`crate::SolverContext`] whose
/// cached basis came from an earlier epoch of the **same** problem lineage
/// uses the journal to remap its basis onto the new shape, so one tenant
/// joining or leaving costs a short basis repair instead of a cold solve.
/// The journal never affects semantics; it only widens warm-startability.
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    variable_names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    /// Lineage id: clones share it, deserialized/new problems mint fresh ones.
    instance: u64,
    /// Shape edits since `journal_base_epoch`, newest last.
    journal: Vec<ChurnOp>,
    journal_base_epoch: u64,
    /// Attribution owner slot per variable ([`NO_OWNER`] = shared).  Like the
    /// journal, a process-local hint: not serialized, and cleared by every
    /// journaled shape edit so it can never survive churn stale.  Empty =
    /// attribution disabled.
    var_owner: Vec<u32>,
    /// Attribution owner slot per constraint row ([`NO_OWNER`] = shared).
    row_owner: Vec<u32>,
}

impl Problem {
    /// Creates an empty problem with the given optimisation sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            variable_names: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            journal: Vec::new(),
            journal_base_epoch: 0,
            var_owner: Vec::new(),
            row_owner: Vec::new(),
        }
    }

    fn record(&mut self, op: ChurnOp) {
        self.journal.push(op);
        if self.journal.len() > JOURNAL_CAP {
            let drop = self.journal.len() - JOURNAL_CAP;
            self.journal.drain(..drop);
            self.journal_base_epoch += drop as u64;
        }
        // Owner maps are positional; any shape edit invalidates them.  The
        // caller re-sets them (cheaply, they are arithmetic) before solving.
        self.var_owner.clear();
        self.row_owner.clear();
    }

    /// Declares which attribution owner slot each variable and constraint row
    /// belongs to, enabling per-tenant solver-work attribution for the next
    /// solve ([`crate::SolverContext::last_attribution`]).  Slots are dense
    /// small integers (the caller's tenant positions); [`NO_OWNER`] marks
    /// shared entities such as capacity rows.
    ///
    /// The maps are positional and process-local: they are not serialized,
    /// and every journaled shape edit clears them — set them after structural
    /// churn, right before solving.  Length mismatches with the current shape
    /// disable attribution rather than misattribute.
    pub fn set_attribution_owners(&mut self, var_owner: Vec<u32>, row_owner: Vec<u32>) {
        self.var_owner = var_owner;
        self.row_owner = row_owner;
    }

    /// Drops the attribution owner maps (attribution disabled until set again).
    pub fn clear_attribution_owners(&mut self) {
        self.var_owner.clear();
        self.row_owner.clear();
    }

    /// The owner maps when they are set and consistent with the current
    /// shape, `None` otherwise.
    pub(crate) fn attribution_owners(&self) -> Option<(&[u32], &[u32])> {
        (self.var_owner.len() == self.variable_names.len()
            && self.row_owner.len() == self.constraints.len())
        .then_some((self.var_owner.as_slice(), self.row_owner.as_slice()))
    }

    /// Per-process-unique id of this problem's edit lineage.  Clones keep the
    /// id (their journals share a common prefix); deserialized problems mint
    /// a fresh one, because the journal does not survive the wire.
    pub fn churn_instance(&self) -> u64 {
        self.instance
    }

    /// Number of shape edits applied over this problem's lifetime.  Together
    /// with [`Problem::churn_instance`] this identifies a point in the edit
    /// history that a cached basis can be repaired from.
    pub fn churn_epoch(&self) -> u64 {
        self.journal_base_epoch + self.journal.len() as u64
    }

    /// Old→new index maps (variables, rows) bridging the shape edits since
    /// `epoch`.  `None` when the journal no longer reaches back that far (the
    /// entries were trimmed, or `epoch` is from a diverged clone's future).
    /// `map[old] == None` means the entity was removed.
    pub(crate) fn churn_maps_since(&self, epoch: u64) -> Option<(ChurnMap, ChurnMap)> {
        if epoch < self.journal_base_epoch || epoch > self.churn_epoch() {
            return None;
        }
        let replay = &self.journal[(epoch - self.journal_base_epoch) as usize..];

        // Reconstruct the counts at `epoch` by undoing the replay suffix.
        let mut old_n = self.variable_names.len();
        let mut old_m = self.constraints.len();
        for op in replay.iter().rev() {
            match op {
                ChurnOp::AddVars { count } => old_n = old_n.checked_sub(*count)?,
                ChurnOp::AddRows { count } => old_m = old_m.checked_sub(*count)?,
                ChurnOp::RemoveVars { indices } => old_n += indices.len(),
                ChurnOp::RemoveRows { indices } => old_m += indices.len(),
            }
        }

        // Forward replay: `alive_*[current_pos] = old index` (MAX = born later).
        let mut alive_vars: Vec<usize> = (0..old_n).collect();
        let mut alive_rows: Vec<usize> = (0..old_m).collect();
        for op in replay {
            match op {
                ChurnOp::AddVars { count } => {
                    let len = alive_vars.len();
                    alive_vars.resize(len + count, usize::MAX);
                }
                ChurnOp::AddRows { count } => {
                    let len = alive_rows.len();
                    alive_rows.resize(len + count, usize::MAX);
                }
                ChurnOp::RemoveVars { indices } => {
                    for &i in indices {
                        if i >= alive_vars.len() {
                            return None;
                        }
                        alive_vars.remove(i);
                    }
                }
                ChurnOp::RemoveRows { indices } => {
                    for &i in indices {
                        if i >= alive_rows.len() {
                            return None;
                        }
                        alive_rows.remove(i);
                    }
                }
            }
        }
        let mut var_map = vec![None; old_n];
        for (cur, &old) in alive_vars.iter().enumerate() {
            if old != usize::MAX {
                var_map[old] = Some(cur);
            }
        }
        let mut row_map = vec![None; old_m];
        for (cur, &old) in alive_rows.iter().enumerate() {
            if old != usize::MAX {
                row_map[old] = Some(cur);
            }
        }
        Some((var_map, row_map))
    }

    /// Adds a non-negative decision variable with objective coefficient zero.
    pub fn add_variable(&mut self, name: impl Into<String>) -> Variable {
        let idx = self.variable_names.len();
        self.variable_names.push(name.into());
        self.objective.push(0.0);
        self.record(ChurnOp::AddVars { count: 1 });
        Variable(idx)
    }

    /// Adds `count` variables named `prefix_0 .. prefix_{count-1}` and returns their handles.
    pub fn add_variables(&mut self, prefix: &str, count: usize) -> Vec<Variable> {
        let start = self.variable_names.len();
        for i in 0..count {
            self.variable_names.push(format!("{prefix}_{i}"));
            self.objective.push(0.0);
        }
        if count > 0 {
            self.record(ChurnOp::AddVars { count });
        }
        (start..start + count).map(Variable).collect()
    }

    /// Sets the objective coefficient of `variable`.
    ///
    /// # Panics
    ///
    /// Panics if `variable` does not belong to this problem.
    pub fn set_objective_coefficient(&mut self, variable: Variable, coefficient: f64) {
        self.objective[variable.0] = coefficient;
    }

    /// Adds `delta` to the objective coefficient of `variable`.
    pub fn add_objective_coefficient(&mut self, variable: Variable, delta: f64) {
        self.objective[variable.0] += delta;
    }

    /// Updates the objective coefficient of `variable` in place.
    ///
    /// Alias of [`Problem::set_objective_coefficient`], named for the
    /// round-over-round update flow: mutating coefficients between solves
    /// keeps the problem shape intact, so a [`crate::SolverContext`] can
    /// warm-start from the previous optimal basis.
    pub fn update_objective_coefficient(&mut self, variable: Variable, coefficient: f64) {
        self.objective[variable.0] = coefficient;
    }

    /// Updates the right-hand side of constraint `index` in place, without
    /// rebuilding the constraint row.
    ///
    /// Note that flipping the *sign* of a right-hand side changes the
    /// standard-form layout (rows are normalised to non-negative right-hand
    /// sides), so it also changes [`Problem::shape_signature`]; the next
    /// context solve then either repairs the basis across the layout change
    /// (same lineage, see [`Problem::churn_instance`]) or runs cold.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_rhs(&mut self, index: usize, rhs: f64) {
        self.constraints[index].rhs = rhs;
    }

    /// Updates (or inserts) the coefficient of `variable` in constraint
    /// `index`, keeping the rest of the row intact.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_constraint_coefficient(
        &mut self,
        index: usize,
        variable: Variable,
        coefficient: f64,
    ) {
        let expr = &mut self.constraints[index].expr;
        if let Some(entry) = expr.terms.iter_mut().find(|(v, _)| *v == variable) {
            entry.1 = coefficient;
        } else {
            expr.terms.push((variable, coefficient));
        }
    }

    /// Hash of the problem *shape*: dimensions plus the effective relational
    /// operator of every row (after negative-RHS normalisation).  Two
    /// problems with equal signatures build identical standard-form layouts,
    /// which is the precondition for basis reuse in
    /// [`crate::SolverContext::solve`].
    pub fn shape_signature(&self) -> u64 {
        // FNV-1a over the shape description.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        };
        for b in (self.variable_names.len() as u64).to_le_bytes() {
            mix(b);
        }
        for b in (self.constraints.len() as u64).to_le_bytes() {
            mix(b);
        }
        for c in &self.constraints {
            let flipped = c.rhs < 0.0;
            let op = match (c.op, flipped) {
                (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => 0u8,
                (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => 1,
                (ConstraintOp::Eq, _) => 2,
            };
            mix(op | u8::from(flipped) << 4);
        }
        hash
    }

    /// Adds a constraint from `(variable, coefficient)` pairs.
    pub fn add_constraint(
        &mut self,
        terms: &[(Variable, f64)],
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        let expr: LinearExpr = terms.iter().copied().collect();
        self.add_constraint_expr(expr, op, rhs, None)
    }

    /// Adds a named constraint from a prepared [`LinearExpr`].
    pub fn add_constraint_expr(
        &mut self,
        expr: LinearExpr,
        op: ConstraintOp,
        rhs: f64,
        name: Option<String>,
    ) -> usize {
        self.constraints.push(Constraint {
            expr,
            op,
            rhs,
            name,
        });
        self.record(ChurnOp::AddRows { count: 1 });
        self.constraints.len() - 1
    }

    /// Batched churn edit: adds `var_count` variables named
    /// `{var_prefix}_0 ..`, then the constraint rows produced by `rows` (which
    /// receives the fresh handles).  Returns the new handles and row indices.
    ///
    /// This is the *tenant join* primitive: because the edit is journaled, a
    /// [`crate::SolverContext`] holding a basis from before the join repairs
    /// it across the shape change instead of cold-solving.
    pub fn add_tenant_rows<F>(
        &mut self,
        var_prefix: &str,
        var_count: usize,
        rows: F,
    ) -> (Vec<Variable>, Vec<usize>)
    where
        F: FnOnce(&[Variable]) -> Vec<(LinearExpr, ConstraintOp, f64)>,
    {
        let vars = self.add_variables(var_prefix, var_count);
        let new_rows = rows(&vars);
        let start = self.constraints.len();
        let count = new_rows.len();
        for (expr, op, rhs) in new_rows {
            self.constraints.push(Constraint {
                expr,
                op,
                rhs,
                name: None,
            });
        }
        if count > 0 {
            self.record(ChurnOp::AddRows { count });
        }
        (vars, (start..start + count).collect())
    }

    /// Batched churn edit: removes the given variables and constraint rows in
    /// one journaled step — the *tenant leave* primitive, the inverse of
    /// [`Problem::add_tenant_rows`].
    ///
    /// Remaining [`Variable`] handles with indices above a removed variable
    /// are invalidated (indices shift down); callers that keep handles across
    /// churn should rebuild them from their own tenant bookkeeping, exactly
    /// like the OEF policies do.  Removed variables also disappear from every
    /// surviving constraint row.  Duplicate or out-of-range indices are
    /// ignored.
    pub fn remove_tenant_rows(&mut self, variables: &[Variable], constraints: &[usize]) {
        // Rows first, back to front, journaling the applied order.
        let mut rows: Vec<usize> = constraints
            .iter()
            .copied()
            .filter(|&i| i < self.constraints.len())
            .collect();
        rows.sort_unstable_by(|a, b| b.cmp(a));
        rows.dedup();
        if !rows.is_empty() {
            for &i in &rows {
                self.constraints.remove(i);
            }
            self.record(ChurnOp::RemoveRows { indices: rows });
        }

        let mut vars: Vec<usize> = variables
            .iter()
            .map(|v| v.0)
            .filter(|&i| i < self.variable_names.len())
            .collect();
        vars.sort_unstable_by(|a, b| b.cmp(a));
        vars.dedup();
        if vars.is_empty() {
            return;
        }
        for &i in &vars {
            self.variable_names.remove(i);
            self.objective.remove(i);
        }
        // Old variable index -> new index (or MAX for removed), then rewrite
        // every constraint row once.
        let old_n = self.variable_names.len() + vars.len();
        let mut shift = vec![0usize; old_n];
        for &i in &vars {
            shift[i] = usize::MAX;
        }
        let mut next = 0usize;
        for slot in shift.iter_mut() {
            if *slot != usize::MAX {
                *slot = next;
                next += 1;
            }
        }
        for c in &mut self.constraints {
            c.expr.terms.retain_mut(|(v, _)| {
                let mapped = shift.get(v.0).copied().unwrap_or(usize::MAX);
                if mapped == usize::MAX {
                    false
                } else {
                    v.0 = mapped;
                    true
                }
            });
        }
        self.record(ChurnOp::RemoveVars { indices: vars });
    }

    /// Handle for the variable at `index`, when it exists.
    ///
    /// Useful for callers that maintain an arithmetic layout over the
    /// variable space (e.g. tenant-major blocks) across churn edits, where
    /// stored handles are invalidated by removals but positions are not.
    pub fn variable(&self, index: usize) -> Option<Variable> {
        (index < self.variable_names.len()).then_some(Variable(index))
    }

    /// Number of decision variables.
    pub fn num_variables(&self) -> usize {
        self.variable_names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficients indexed by variable.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints of the problem.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Name of a variable.
    pub fn variable_name(&self, variable: Variable) -> &str {
        &self.variable_names[variable.0]
    }

    /// Validates the problem: every referenced variable exists and all coefficients are
    /// finite.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::EmptyProblem`], [`LpError::InvalidVariable`] or
    /// [`LpError::NonFiniteCoefficient`].
    pub fn validate(&self) -> Result<()> {
        if self.variable_names.is_empty() {
            return Err(LpError::EmptyProblem);
        }
        for (i, c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: format!("objective coefficient of variable {i}"),
                });
            }
        }
        for (ci, constraint) in self.constraints.iter().enumerate() {
            if !constraint.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: format!("right-hand side of constraint {ci}"),
                });
            }
            for (var, coeff) in constraint.expr.terms() {
                if var.0 >= self.variable_names.len() {
                    return Err(LpError::InvalidVariable {
                        index: var.0,
                        count: self.variable_names.len(),
                    });
                }
                if !coeff.is_finite() {
                    return Err(LpError::NonFiniteCoefficient {
                        location: format!("constraint {ci}, variable {}", var.0),
                    });
                }
            }
        }
        Ok(())
    }

    /// Solves the problem with default [`SimplexOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`] or [`LpError::Unbounded`] for degenerate
    /// programs, or a validation error for malformed input.
    pub fn solve(&self) -> Result<Solution> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves the problem with explicit solver options.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`], plus [`LpError::IterationLimit`] if the configured
    /// pivot budget is exhausted.
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<Solution> {
        self.validate()?;
        simplex::solve(self, options)
    }
}

/// Hand-written (rather than derived) to keep the wire format exactly the
/// pre-churn-journal `{sense, variable_names, objective, constraints}`: the
/// journal and lineage id are process-local warm-start hints, meaningless on
/// another process's clock, so they are not serialized.
impl Serialize for Problem {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("sense".to_string(), self.sense.serialize()),
            (
                "variable_names".to_string(),
                self.variable_names.serialize(),
            ),
            ("objective".to_string(), self.objective.serialize()),
            ("constraints".to_string(), self.constraints.serialize()),
        ])
    }
}

impl Deserialize for Problem {
    fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for Problem"))?;
        Ok(Self {
            sense: Sense::deserialize(serde::get_field(fields, "sense")?)?,
            variable_names: Vec::<String>::deserialize(serde::get_field(
                fields,
                "variable_names",
            )?)?,
            objective: Vec::<f64>::deserialize(serde::get_field(fields, "objective")?)?,
            constraints: Vec::<Constraint>::deserialize(serde::get_field(fields, "constraints")?)?,
            // A deserialized problem starts a fresh lineage: its journal did
            // not travel with it, so no cached basis can claim kinship.
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            journal: Vec::new(),
            journal_base_epoch: 0,
            var_owner: Vec::new(),
            row_owner: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.add_objective_coefficient(y, 0.5);
        p.add_objective_coefficient(y, 0.5);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 3.0);

        assert_eq!(p.num_variables(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.objective(), &[1.0, 1.0]);
        assert_eq!(p.variable_name(x), "x");
        assert_eq!(p.variable_name(y), "y");
        assert_eq!(p.sense(), Sense::Maximize);
        assert_eq!(p.constraints()[0].rhs, 3.0);
    }

    #[test]
    fn add_variables_generates_names() {
        let mut p = Problem::new(Sense::Minimize);
        let vars = p.add_variables("x", 3);
        assert_eq!(vars.len(), 3);
        assert_eq!(p.variable_name(vars[2]), "x_2");
    }

    #[test]
    fn validate_rejects_empty_problem() {
        let p = Problem::new(Sense::Maximize);
        assert_eq!(p.validate(), Err(LpError::EmptyProblem));
    }

    #[test]
    fn validate_rejects_nan_objective() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective_coefficient(x, f64::NAN);
        assert!(matches!(
            p.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn validate_rejects_foreign_variable() {
        let mut other = Problem::new(Sense::Maximize);
        other.add_variable("a");
        let foreign = other.add_variable("b");

        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_variable("x");
        p.add_constraint(&[(foreign, 1.0)], ConstraintOp::Le, 1.0);
        assert!(matches!(
            p.validate(),
            Err(LpError::InvalidVariable { index: 1, count: 1 })
        ));
    }

    #[test]
    fn validate_rejects_infinite_rhs() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, f64::INFINITY);
        assert!(matches!(
            p.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn linear_expr_collect_and_extend() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        let mut expr: LinearExpr = vec![(x, 1.0)].into_iter().collect();
        expr.extend(vec![(y, 2.0)]);
        assert_eq!(expr.len(), 2);
        assert!(!expr.is_empty());
        let terms: Vec<_> = expr.terms().collect();
        assert_eq!(terms, vec![(x, 1.0), (y, 2.0)]);
    }

    #[test]
    fn problem_serde_round_trip() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective_coefficient(x, 2.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 5.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: Problem = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_variables(), 1);
        assert_eq!(back.constraints()[0].rhs, 5.0);
    }

    #[test]
    fn churn_maps_bridge_a_join_and_a_leave() {
        let mut p = Problem::new(Sense::Maximize);
        let vars = p.add_variables("x", 3);
        for v in &vars {
            p.set_objective_coefficient(*v, 1.0);
            p.add_constraint(&[(*v, 1.0)], ConstraintOp::Le, 2.0);
        }
        let epoch = p.churn_epoch();

        // One tenant joins (two vars, one row), then the middle original
        // variable and its row leave.
        let (joined, _) = p.add_tenant_rows("y", 2, |vs| {
            let expr: LinearExpr = vs.iter().map(|v| (*v, 1.0)).collect();
            vec![(expr, ConstraintOp::Le, 1.0)]
        });
        p.remove_tenant_rows(&[vars[1]], &[1]);

        let (var_map, row_map) = p
            .churn_maps_since(epoch)
            .expect("journal reaches the cached epoch");
        // Old vars: x0, x1, x2 — x1 removed, x2 shifts down one.
        assert_eq!(var_map[0], Some(0));
        assert_eq!(var_map[1], None);
        assert_eq!(var_map[2], Some(1));
        // Old rows: three Le rows — row 1 removed, row 2 shifts down one.
        assert_eq!(row_map[0], Some(0));
        assert_eq!(row_map[1], None);
        assert_eq!(row_map[2], Some(1));
        // The joined block survives at the tail of the new index space —
        // shifted down one, which is exactly why stored handles (like
        // `joined`) are documented as invalidated across a removal.
        assert_eq!(p.num_variables(), 4);
        assert_eq!(joined[0], Variable(3));
        assert_eq!(p.variable_name(p.variable(2).unwrap()), "y_0");
        // An epoch from before the tracked history (same instance, future
        // epoch) yields no bridge.
        assert!(p.churn_maps_since(p.churn_epoch() + 1).is_none());
    }

    #[test]
    fn churn_journal_trims_and_forgets_ancient_epochs() {
        let mut p = Problem::new(Sense::Maximize);
        p.add_variable("x");
        let epoch = p.churn_epoch();
        assert!(p.churn_maps_since(epoch).is_some());
        // Push the journal far past its cap: the oldest entries are trimmed,
        // so the original epoch is no longer bridgeable — a context holding
        // that basis must fall back to a cold solve, not a wrong repair.
        for _ in 0..5000 {
            p.add_variable("pad");
        }
        assert!(p.churn_maps_since(epoch).is_none());
        assert!(p.churn_maps_since(p.churn_epoch()).is_some());
    }

    #[test]
    fn remove_tenant_rows_rewrites_surviving_rows() {
        let mut p = Problem::new(Sense::Maximize);
        let vars = p.add_variables("x", 3);
        p.add_constraint(
            &[(vars[0], 1.0), (vars[1], 2.0), (vars[2], 3.0)],
            ConstraintOp::Le,
            4.0,
        );
        p.remove_tenant_rows(&[vars[1]], &[]);
        // The removed variable's term disappears; the survivor's handle is
        // re-pointed at the shifted index.
        let terms: Vec<_> = p.constraints()[0].expr.terms().collect();
        assert_eq!(terms.len(), 2);
        assert_eq!(terms[0], (Variable(0), 1.0));
        assert_eq!(terms[1], (Variable(1), 3.0));
        assert_eq!(p.num_variables(), 2);
        assert_eq!(p.variable_name(Variable(1)), "x_2");
    }
}
