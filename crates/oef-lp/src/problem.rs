//! Linear-program builder types.
//!
//! A [`Problem`] owns a set of non-negative decision variables, an objective and a
//! list of linear constraints.  Variables are referred to through the opaque
//! [`Variable`] handle returned by [`Problem::add_variable`].

use crate::error::LpError;
use crate::simplex::{self, SimplexOptions};
use crate::solution::Solution;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Optimisation direction of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Relational operator of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// Left-hand side must be less than or equal to the right-hand side.
    Le,
    /// Left-hand side must equal the right-hand side.
    Eq,
    /// Left-hand side must be greater than or equal to the right-hand side.
    Ge,
}

/// Handle to a decision variable of a [`Problem`].
///
/// Handles are plain indices; they are cheap to copy and can be stored in lookup
/// tables (for example the OEF crates keep a `(user, gpu_type) -> Variable` map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Variable(pub(crate) usize);

impl Variable {
    /// Raw index of this variable inside its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression `sum coefficient_i * variable_i`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearExpr {
    terms: Vec<(Variable, f64)>,
}

impl LinearExpr {
    /// Creates an empty expression.
    pub fn new() -> Self {
        Self { terms: Vec::new() }
    }

    /// Adds `coefficient * variable` to the expression, returning `self` for chaining.
    pub fn add_term(&mut self, variable: Variable, coefficient: f64) -> &mut Self {
        self.terms.push((variable, coefficient));
        self
    }

    /// Iterates over the `(variable, coefficient)` terms of the expression.
    pub fn terms(&self) -> impl Iterator<Item = (Variable, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// Number of terms in the expression.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl FromIterator<(Variable, f64)> for LinearExpr {
    fn from_iter<T: IntoIterator<Item = (Variable, f64)>>(iter: T) -> Self {
        Self {
            terms: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Variable, f64)> for LinearExpr {
    fn extend<T: IntoIterator<Item = (Variable, f64)>>(&mut self, iter: T) {
        self.terms.extend(iter);
    }
}

/// A single linear constraint `expr op rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Left-hand side expression.
    pub expr: LinearExpr,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side constant.
    pub rhs: f64,
    /// Optional label used in debugging output.
    pub name: Option<String>,
}

/// A linear program over non-negative variables.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Problem {
    sense: Sense,
    variable_names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimisation sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            variable_names: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a non-negative decision variable with objective coefficient zero.
    pub fn add_variable(&mut self, name: impl Into<String>) -> Variable {
        let idx = self.variable_names.len();
        self.variable_names.push(name.into());
        self.objective.push(0.0);
        Variable(idx)
    }

    /// Adds `count` variables named `prefix_0 .. prefix_{count-1}` and returns their handles.
    pub fn add_variables(&mut self, prefix: &str, count: usize) -> Vec<Variable> {
        (0..count)
            .map(|i| self.add_variable(format!("{prefix}_{i}")))
            .collect()
    }

    /// Sets the objective coefficient of `variable`.
    ///
    /// # Panics
    ///
    /// Panics if `variable` does not belong to this problem.
    pub fn set_objective_coefficient(&mut self, variable: Variable, coefficient: f64) {
        self.objective[variable.0] = coefficient;
    }

    /// Adds `delta` to the objective coefficient of `variable`.
    pub fn add_objective_coefficient(&mut self, variable: Variable, delta: f64) {
        self.objective[variable.0] += delta;
    }

    /// Updates the objective coefficient of `variable` in place.
    ///
    /// Alias of [`Problem::set_objective_coefficient`], named for the
    /// round-over-round update flow: mutating coefficients between solves
    /// keeps the problem shape intact, so a [`crate::SolverContext`] can
    /// warm-start from the previous optimal basis.
    pub fn update_objective_coefficient(&mut self, variable: Variable, coefficient: f64) {
        self.objective[variable.0] = coefficient;
    }

    /// Updates the right-hand side of constraint `index` in place, without
    /// rebuilding the constraint row.
    ///
    /// Note that flipping the *sign* of a right-hand side changes the
    /// standard-form layout (rows are normalised to non-negative right-hand
    /// sides), so it also changes [`Problem::shape_signature`] and forces the
    /// next context solve to run cold.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_rhs(&mut self, index: usize, rhs: f64) {
        self.constraints[index].rhs = rhs;
    }

    /// Updates (or inserts) the coefficient of `variable` in constraint
    /// `index`, keeping the rest of the row intact.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_constraint_coefficient(
        &mut self,
        index: usize,
        variable: Variable,
        coefficient: f64,
    ) {
        let expr = &mut self.constraints[index].expr;
        if let Some(entry) = expr.terms.iter_mut().find(|(v, _)| *v == variable) {
            entry.1 = coefficient;
        } else {
            expr.terms.push((variable, coefficient));
        }
    }

    /// Hash of the problem *shape*: dimensions plus the effective relational
    /// operator of every row (after negative-RHS normalisation).  Two
    /// problems with equal signatures build identical standard-form layouts,
    /// which is the precondition for basis reuse in
    /// [`crate::SolverContext::solve`].
    pub fn shape_signature(&self) -> u64 {
        // FNV-1a over the shape description.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        };
        for b in (self.variable_names.len() as u64).to_le_bytes() {
            mix(b);
        }
        for b in (self.constraints.len() as u64).to_le_bytes() {
            mix(b);
        }
        for c in &self.constraints {
            let flipped = c.rhs < 0.0;
            let op = match (c.op, flipped) {
                (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => 0u8,
                (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => 1,
                (ConstraintOp::Eq, _) => 2,
            };
            mix(op | u8::from(flipped) << 4);
        }
        hash
    }

    /// Adds a constraint from `(variable, coefficient)` pairs.
    pub fn add_constraint(
        &mut self,
        terms: &[(Variable, f64)],
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        let expr: LinearExpr = terms.iter().copied().collect();
        self.add_constraint_expr(expr, op, rhs, None)
    }

    /// Adds a named constraint from a prepared [`LinearExpr`].
    pub fn add_constraint_expr(
        &mut self,
        expr: LinearExpr,
        op: ConstraintOp,
        rhs: f64,
        name: Option<String>,
    ) -> usize {
        self.constraints.push(Constraint {
            expr,
            op,
            rhs,
            name,
        });
        self.constraints.len() - 1
    }

    /// Number of decision variables.
    pub fn num_variables(&self) -> usize {
        self.variable_names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficients indexed by variable.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints of the problem.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Name of a variable.
    pub fn variable_name(&self, variable: Variable) -> &str {
        &self.variable_names[variable.0]
    }

    /// Validates the problem: every referenced variable exists and all coefficients are
    /// finite.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::EmptyProblem`], [`LpError::InvalidVariable`] or
    /// [`LpError::NonFiniteCoefficient`].
    pub fn validate(&self) -> Result<()> {
        if self.variable_names.is_empty() {
            return Err(LpError::EmptyProblem);
        }
        for (i, c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: format!("objective coefficient of variable {i}"),
                });
            }
        }
        for (ci, constraint) in self.constraints.iter().enumerate() {
            if !constraint.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: format!("right-hand side of constraint {ci}"),
                });
            }
            for (var, coeff) in constraint.expr.terms() {
                if var.0 >= self.variable_names.len() {
                    return Err(LpError::InvalidVariable {
                        index: var.0,
                        count: self.variable_names.len(),
                    });
                }
                if !coeff.is_finite() {
                    return Err(LpError::NonFiniteCoefficient {
                        location: format!("constraint {ci}, variable {}", var.0),
                    });
                }
            }
        }
        Ok(())
    }

    /// Solves the problem with default [`SimplexOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`] or [`LpError::Unbounded`] for degenerate
    /// programs, or a validation error for malformed input.
    pub fn solve(&self) -> Result<Solution> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves the problem with explicit solver options.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`], plus [`LpError::IterationLimit`] if the configured
    /// pivot budget is exhausted.
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<Solution> {
        self.validate()?;
        simplex::solve(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.add_objective_coefficient(y, 0.5);
        p.add_objective_coefficient(y, 0.5);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 3.0);

        assert_eq!(p.num_variables(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.objective(), &[1.0, 1.0]);
        assert_eq!(p.variable_name(x), "x");
        assert_eq!(p.variable_name(y), "y");
        assert_eq!(p.sense(), Sense::Maximize);
        assert_eq!(p.constraints()[0].rhs, 3.0);
    }

    #[test]
    fn add_variables_generates_names() {
        let mut p = Problem::new(Sense::Minimize);
        let vars = p.add_variables("x", 3);
        assert_eq!(vars.len(), 3);
        assert_eq!(p.variable_name(vars[2]), "x_2");
    }

    #[test]
    fn validate_rejects_empty_problem() {
        let p = Problem::new(Sense::Maximize);
        assert_eq!(p.validate(), Err(LpError::EmptyProblem));
    }

    #[test]
    fn validate_rejects_nan_objective() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective_coefficient(x, f64::NAN);
        assert!(matches!(
            p.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn validate_rejects_foreign_variable() {
        let mut other = Problem::new(Sense::Maximize);
        other.add_variable("a");
        let foreign = other.add_variable("b");

        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_variable("x");
        p.add_constraint(&[(foreign, 1.0)], ConstraintOp::Le, 1.0);
        assert!(matches!(
            p.validate(),
            Err(LpError::InvalidVariable { index: 1, count: 1 })
        ));
    }

    #[test]
    fn validate_rejects_infinite_rhs() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, f64::INFINITY);
        assert!(matches!(
            p.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn linear_expr_collect_and_extend() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        let mut expr: LinearExpr = vec![(x, 1.0)].into_iter().collect();
        expr.extend(vec![(y, 2.0)]);
        assert_eq!(expr.len(), 2);
        assert!(!expr.is_empty());
        let terms: Vec<_> = expr.terms().collect();
        assert_eq!(terms, vec![(x, 1.0), (y, 2.0)]);
    }

    #[test]
    fn problem_serde_round_trip() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective_coefficient(x, 2.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 5.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: Problem = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_variables(), 1);
        assert_eq!(back.constraints()[0].rhs, 5.0);
    }
}
