//! # oef-lp — a small, dependency-free linear-programming solver
//!
//! The OEF paper solves its allocation programs with cvxpy + ECOS.  Both OEF programs
//! (the non-cooperative program (9) and the cooperative program (10)), as well as the
//! Gavel baseline, are *linear* programs, so this crate provides an exact two-phase
//! dense simplex solver which plays the role of that substrate.
//!
//! The API follows a builder style:
//!
//! ```
//! use oef_lp::{Problem, Sense, ConstraintOp};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x, y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_variable("x");
//! let y = p.add_variable("y");
//! p.set_objective_coefficient(x, 3.0);
//! p.set_objective_coefficient(y, 2.0);
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 2.0);
//!
//! let solution = p.solve().unwrap();
//! assert!((solution.objective_value() - 10.0).abs() < 1e-6);
//! assert!((solution.value(x) - 2.0).abs() < 1e-6);
//! assert!((solution.value(y) - 2.0).abs() < 1e-6);
//! ```
//!
//! The solver supports `<=`, `>=` and `==` constraints, non-negative variables and
//! either optimisation sense.  It detects infeasible and unbounded programs and
//! reports them through [`LpError`].
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod simplex;
mod solution;

pub use error::LpError;
pub use problem::{Constraint, ConstraintOp, LinearExpr, Problem, Sense, Variable};
pub use simplex::{SimplexOptions, SolverStats};
pub use solution::Solution;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LpError>;
