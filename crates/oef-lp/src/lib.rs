//! # oef-lp — a small, dependency-free linear-programming solver
//!
//! The OEF paper solves its allocation programs with cvxpy + ECOS.  Both OEF programs
//! (the non-cooperative program (9) and the cooperative program (10)), as well as the
//! Gavel baseline, are *linear* programs, so this crate provides an exact two-phase
//! dense simplex solver which plays the role of that substrate.
//!
//! The API follows a builder style:
//!
//! ```
//! use oef_lp::{Problem, Sense, ConstraintOp};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x, y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_variable("x");
//! let y = p.add_variable("y");
//! p.set_objective_coefficient(x, 3.0);
//! p.set_objective_coefficient(y, 2.0);
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 2.0);
//!
//! let solution = p.solve().unwrap();
//! assert!((solution.objective_value() - 10.0).abs() < 1e-6);
//! assert!((solution.value(x) - 2.0).abs() < 1e-6);
//! assert!((solution.value(y) - 2.0).abs() < 1e-6);
//! ```
//!
//! The solver supports `<=`, `>=` and `==` constraints, non-negative variables and
//! either optimisation sense.  It detects infeasible and unbounded programs and
//! reports them through [`LpError`].
//!
//! # Cold vs warm solve paths
//!
//! The crate ships two solvers with identical semantics:
//!
//! * **Cold / dense reference** — [`Problem::solve`] and
//!   [`Problem::solve_with`] run the dense two-phase simplex from scratch on
//!   every call.  This is the reference oracle: simple, battle-tested by the
//!   property suite, with no state between calls.
//! * **Warm / revised** — [`SolverContext::solve`] (and the interior-mutable
//!   [`ContextCell`] the OEF policies embed) runs the revised simplex over a
//!   sparse LU factorization of the basis with eta-file (product-form)
//!   updates, and caches the optimal basis between calls.  B⁻¹ is never
//!   formed: every application is a pair of sparse triangular solves against
//!   L and U plus a short stack of eta transforms, so a pivot costs an
//!   eta append instead of an O(m²) inverse update (see the `factor` module
//!   docs, and `crates/oef-lp/README.md` for the full design).
//!
//! A context solve picks its path per call:
//!
//! 1. If the problem's [`Problem::shape_signature`] matches the cached basis
//!    (same dimensions and per-row effective operators), the context
//!    **warm-starts**: refactorize the cached basis against the new
//!    coefficients, repair primal feasibility with a few dual-simplex pivots
//!    if the data perturbation moved the vertex, and finish with primal
//!    phase 2.  An unchanged problem re-solves in zero pivots; a per-round
//!    jittered problem typically needs a handful.
//! 2. If the shape changed but the problem's churn journal
//!    ([`Problem::churn_epoch`]) reaches back to the cached basis — a tenant
//!    joined or left via [`Problem::add_tenant_rows`] /
//!    [`Problem::remove_tenant_rows`] — the context **repairs across the
//!    churn**: it remaps every cached basic column through the old→new index
//!    maps, patches removed rows with their slack or artificial column, and
//!    proceeds as a warm solve.  One tenant's churn costs a basis repair,
//!    not a cold solve.
//! 3. On an unbridgeable shape change, a singular or unrepairable basis, or
//!    an exhausted pivot budget, it falls back to a **cold** two-phase
//!    revised solve.
//! 4. If even that hits the iteration limit (numerical trouble), the context
//!    defers to the dense reference solver, so `SolverContext::solve` never
//!    answers worse than `Problem::solve_with`.
//!
//! Mid-solve, the factorization refreshes itself ("refactorization") when the
//! eta file grows past its bound or a periodic residual check detects
//! numerical drift; [`ContextStats`] counts refactorizations, eta pivots,
//! repairs and fallbacks so callers can watch the machinery work.
//!
//! Mutate a problem between rounds with [`Problem::update_rhs`],
//! [`Problem::update_objective_coefficient`] and
//! [`Problem::update_constraint_coefficient`] — these keep the shape (and
//! therefore warm-startability) intact, with the one caveat that flipping the
//! sign of a right-hand side changes the effective operator and forces a
//! repair-or-cold solve.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attrib;
mod error;
mod factor;
mod problem;
mod revised;
mod simplex;
mod solution;

pub use attrib::{AttributionReport, TenantWork};
pub use error::LpError;
pub use problem::{Constraint, ConstraintOp, LinearExpr, Problem, Sense, Variable, NO_OWNER};
pub use revised::{ContextCell, ContextStats, SolverContext};
pub use simplex::{SimplexOptions, SolverStats};
pub use solution::Solution;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LpError>;
