//! Warm-start capable revised simplex and the reusable [`SolverContext`].
//!
//! The dense two-phase solver in [`crate::simplex`] rebuilds and pivots a full
//! `m x (cols+1)` tableau on every call, which is wasteful for the OEF
//! scheduling loop: every round (and every strategy-proofness probe) solves a
//! program with the *same shape* — identical constraint operators and
//! dimensions — where only the speedup coefficients and capacities moved.  The
//! optimal basis barely changes between consecutive rounds.
//!
//! This module implements the revised simplex method:
//!
//! * the constraint matrix is stored **sparse by column** and never modified;
//! * the only dense state is the `m x m` basis inverse, updated in `O(m²)`
//!   per pivot (a full-tableau pivot costs `O(m * cols)`);
//! * entering columns are priced on demand against the sparse matrix.
//!
//! [`SolverContext`] owns every buffer the solver needs (basis inverse, basic
//! solution, pricing scratch, standard-form arrays) so repeated solves do not
//! reallocate, and it caches the optimal basis of the last solve.  When asked
//! to solve a problem whose [shape signature](crate::Problem::shape_signature)
//! matches the cached one, it *warm-starts*: refactorize the cached basis
//! against the new coefficients, and — if that basis is still primal feasible
//! — skip phase 1 entirely and run phase 2 from a (usually near-optimal)
//! starting point.  On shape change, a singular or infeasible cached basis, or
//! any numerical trouble, it falls back to a cold solve; if the revised cold
//! path itself hits its iteration limit the context falls all the way back to
//! the dense reference solver, so `SolverContext::solve` never reports worse
//! answers than [`crate::Problem::solve_with`].

use crate::error::LpError;
use crate::problem::{ConstraintOp, Problem, Sense};
use crate::simplex::{SimplexOptions, SolverStats};
use crate::solution::Solution;
use crate::Result;

/// Feasibility slack accepted when deciding whether a cached basis is still
/// primal feasible for the updated right-hand side.
const WARM_FEASIBILITY_TOL: f64 = 1e-7;

/// Reusable solver state: buffers plus the cached basis of the last solve.
///
/// ```
/// use oef_lp::{ConstraintOp, Problem, Sense, SolverContext};
///
/// let mut p = Problem::new(Sense::Maximize);
/// let x = p.add_variable("x");
/// let y = p.add_variable("y");
/// p.set_objective_coefficient(x, 3.0);
/// p.set_objective_coefficient(y, 5.0);
/// p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
/// p.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
/// p.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
///
/// let mut ctx = SolverContext::new();
/// let cold = ctx.solve(&p).unwrap();
/// assert!(!cold.stats().warm_start);
///
/// // Same shape, perturbed data: the second solve starts from the cached basis.
/// p.update_rhs(2, 20.0);
/// let warm = ctx.solve(&p).unwrap();
/// assert!(warm.stats().warm_start);
/// assert!((warm.objective_value() - 38.0).abs() < 1e-6);
/// ```
#[derive(Debug, Default)]
pub struct SolverContext {
    options: SimplexOptions,
    cache: Option<BasisCache>,
    warm_solves: u64,
    cold_solves: u64,
    dense_fallbacks: u64,
    last_was_warm: bool,
    scratch: Scratch,
}

#[derive(Debug, Clone)]
struct BasisCache {
    signature: u64,
    basis: Vec<usize>,
}

/// Counters describing how a context's solves were served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Solves that started from the cached basis.
    pub warm_solves: u64,
    /// Solves that ran the two-phase revised simplex from scratch.
    pub cold_solves: u64,
    /// Cold solves that additionally fell back to the dense reference solver.
    pub dense_fallbacks: u64,
}

/// All reusable buffers, kept out of `SolverContext`'s public face.
#[derive(Debug, Default)]
struct Scratch {
    /// Sparse standard-form matrix, by column: `(row, coefficient)` pairs.
    columns: Vec<Vec<(usize, f64)>>,
    /// Non-negative right-hand side.
    b: Vec<f64>,
    /// Phase-2 cost vector (minimize orientation).
    cost: Vec<f64>,
    /// Dense `m x m` basis inverse, row-major.
    binv: Vec<f64>,
    /// Current basic solution `B^{-1} b`.
    xb: Vec<f64>,
    /// Dual prices `c_B^T B^{-1}`.
    y: Vec<f64>,
    /// Direction column `B^{-1} a_j`.
    u: Vec<f64>,
    /// Copy of the normalised pivot row used during the rank-one update.
    pivot_row: Vec<f64>,
    /// Dense working copy of the basis matrix during refactorization.
    factor_work: Vec<f64>,
    /// Current basis: column index per row.
    basis: Vec<usize>,
    /// Membership flag per column.
    in_basis: Vec<bool>,
    /// Extracted structural values.
    values: Vec<f64>,
}

/// Standard-form layout shared by the cold and warm paths.
struct StandardForm {
    rows: usize,
    cols: usize,
    n_structural: usize,
    artificial_start: usize,
}

impl SolverContext {
    /// Context with default [`SimplexOptions`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Context with explicit solver options.
    pub fn with_options(options: SimplexOptions) -> Self {
        Self {
            options,
            ..Self::default()
        }
    }

    /// The options this context solves with.
    pub fn options(&self) -> &SimplexOptions {
        &self.options
    }

    /// Whether the most recent [`SolverContext::solve`] warm-started.
    pub fn last_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Warm/cold counters for this context.
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            warm_solves: self.warm_solves,
            cold_solves: self.cold_solves,
            dense_fallbacks: self.dense_fallbacks,
        }
    }

    /// Drops the cached basis, forcing the next solve to run cold.
    pub fn invalidate(&mut self) {
        self.cache = None;
    }

    /// Solves with the given options, updating the context's options first if
    /// they differ.  The cached basis stays valid across option changes (it
    /// describes the previous optimum, not the tolerances used to reach it).
    ///
    /// This is how policies keep a *public* `solver_options` field
    /// authoritative while the context holds the reusable state: every solve
    /// re-syncs from the field.
    ///
    /// # Errors
    ///
    /// Same contract as [`SolverContext::solve`].
    pub fn solve_with(&mut self, problem: &Problem, options: &SimplexOptions) -> Result<Solution> {
        if self.options != *options {
            self.options = options.clone();
        }
        self.solve(problem)
    }

    /// Solves `problem`, warm-starting from the previous optimal basis when
    /// the problem shape is unchanged.
    ///
    /// # Errors
    ///
    /// Same contract as [`Problem::solve_with`]: validation errors,
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`].
    pub fn solve(&mut self, problem: &Problem) -> Result<Solution> {
        problem.validate()?;
        let signature = problem.shape_signature();
        let form = build_standard_form(problem, &mut self.scratch);

        if let Some(cache) = self.cache.take() {
            if cache.signature == signature && cache.basis.len() == form.rows {
                if let Some(solution) = self.try_warm(problem, &form, &cache.basis)? {
                    self.warm_solves += 1;
                    self.last_was_warm = true;
                    self.cache = Some(BasisCache {
                        signature,
                        basis: self.scratch.basis.clone(),
                    });
                    return Ok(solution);
                }
            }
        }

        self.last_was_warm = false;
        self.cold_solves += 1;
        match self.cold_solve(problem, &form) {
            Ok(solution) => {
                self.cache = Some(BasisCache {
                    signature,
                    basis: self.scratch.basis.clone(),
                });
                Ok(solution)
            }
            Err(LpError::IterationLimit { .. }) => {
                // Numerical trouble (e.g. cycling beyond the pivot budget):
                // defer to the dense reference solver rather than failing.
                self.dense_fallbacks += 1;
                self.cache = None;
                problem.solve_with(&self.options)
            }
            Err(other) => {
                self.cache = None;
                Err(other)
            }
        }
    }

    /// Attempts a warm-started phase-2 solve from `basis`.  Returns
    /// `Ok(None)` when the cached basis is unusable (singular, no longer
    /// primal feasible, or phase 2 ran out of pivots) so the caller can fall
    /// back to a cold solve.
    fn try_warm(
        &mut self,
        problem: &Problem,
        form: &StandardForm,
        basis: &[usize],
    ) -> Result<Option<Solution>> {
        let s = &mut self.scratch;
        s.basis.clear();
        s.basis.extend_from_slice(basis);
        if !factorize(s, form) {
            return Ok(None);
        }
        compute_xb(s, form);

        // Artificial columns cached from a redundant row must stay at zero;
        // if the new data moves them, the basis is unusable.
        let artificials_ok = s
            .basis
            .iter()
            .zip(s.xb.iter())
            .all(|(&col, &v)| col < form.artificial_start || v.abs() <= WARM_FEASIBILITY_TOL);
        if !artificials_ok {
            return Ok(None);
        }

        let mut iterations = 0usize;
        if s.xb.iter().any(|&v| v < -WARM_FEASIBILITY_TOL) {
            // The cached basis is no longer primal feasible for the perturbed
            // data — the typical steady-state case when constraint
            // coefficients (not just the objective) moved.  It is usually
            // still dual feasible (it was optimal a round ago), so a short
            // dual-simplex repair restores primal feasibility in a handful
            // of pivots instead of a full two-phase cold solve.
            if !run_dual_repair(s, form, &self.options, &mut iterations) {
                // Not dual feasible either (or the repair stalled, or the
                // program looks infeasible from here): let the cold path
                // re-derive the answer from scratch rather than trusting a
                // perturbed basis for a hard verdict.
                return Ok(None);
            }
        }
        for v in &mut s.xb {
            if *v < 0.0 {
                *v = 0.0;
            }
        }

        match run_revised_phase(s, form, Phase::Two, &self.options, &mut iterations) {
            Ok(()) => Ok(Some(extract_solution(s, form, problem, iterations, true))),
            Err(LpError::IterationLimit { .. }) => Ok(None),
            Err(other) => Err(other),
        }
    }

    /// Two-phase revised simplex from the all-slack/artificial basis.
    fn cold_solve(&mut self, problem: &Problem, form: &StandardForm) -> Result<Solution> {
        // A preceding (failed) warm attempt may have overwritten the scratch
        // basis with the cached one; rebuild the standard form so the basis
        // is the pristine all-slack/artificial one again.
        build_standard_form(problem, &mut self.scratch);
        let s = &mut self.scratch;
        // The initial basis matrix is the identity (slack +1 or artificial +1
        // per row), so no factorization is required.
        let m = form.rows;
        s.binv.clear();
        s.binv.resize(m * m, 0.0);
        for i in 0..m {
            s.binv[i * m + i] = 1.0;
        }
        s.xb.clear();
        s.xb.extend_from_slice(&s.b);
        s.in_basis.clear();
        s.in_basis.resize(form.cols, false);
        for &col in &s.basis {
            s.in_basis[col] = true;
        }

        let mut iterations = 0usize;
        if form.artificial_start < form.cols {
            run_revised_phase(s, form, Phase::One, &self.options, &mut iterations)?;
            let infeasibility: f64 = s
                .basis
                .iter()
                .zip(s.xb.iter())
                .filter(|(&col, _)| col >= form.artificial_start)
                .map(|(_, &v)| v.max(0.0))
                .sum();
            if infeasibility > self.options.tolerance.max(1e-7) {
                return Err(LpError::Infeasible);
            }
            drive_out_artificials(s, form, &self.options);
        }
        run_revised_phase(s, form, Phase::Two, &self.options, &mut iterations)?;
        Ok(extract_solution(s, form, problem, iterations, false))
    }
}

enum Phase {
    One,
    Two,
}

/// Builds the sparse standard form into the context's scratch buffers and
/// sets the initial all-slack/artificial basis.  Mirrors the dense builder in
/// `simplex.rs`: `<=` rows get a slack, `>=` rows a surplus plus artificial,
/// `==` rows an artificial; negative right-hand sides are normalised first.
fn build_standard_form(problem: &Problem, s: &mut Scratch) -> StandardForm {
    let n = problem.num_variables();
    let m = problem.num_constraints();

    let mut n_slack = 0usize;
    let mut n_artificial = 0usize;
    for c in problem.constraints() {
        match effective_op(c.op, c.rhs < 0.0) {
            ConstraintOp::Le => n_slack += 1,
            ConstraintOp::Ge => {
                n_slack += 1;
                n_artificial += 1;
            }
            ConstraintOp::Eq => n_artificial += 1,
        }
    }
    let cols = n + n_slack + n_artificial;
    let artificial_start = n + n_slack;

    s.columns.resize_with(cols, Vec::new);
    for col in &mut s.columns {
        col.clear();
    }
    s.b.clear();
    s.b.resize(m, 0.0);
    s.basis.clear();
    s.basis.resize(m, usize::MAX);

    let mut slack_cursor = n;
    let mut artificial_cursor = artificial_start;
    for (row, c) in problem.constraints().iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for (var, coeff) in c.expr.terms() {
            if coeff != 0.0 {
                push_coefficient(&mut s.columns[var.index()], row, sign * coeff);
            }
        }
        s.b[row] = sign * c.rhs;
        match effective_op(c.op, flip) {
            ConstraintOp::Le => {
                s.columns[slack_cursor].push((row, 1.0));
                s.basis[row] = slack_cursor;
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                s.columns[slack_cursor].push((row, -1.0));
                slack_cursor += 1;
                s.columns[artificial_cursor].push((row, 1.0));
                s.basis[row] = artificial_cursor;
                artificial_cursor += 1;
            }
            ConstraintOp::Eq => {
                s.columns[artificial_cursor].push((row, 1.0));
                s.basis[row] = artificial_cursor;
                artificial_cursor += 1;
            }
        }
    }

    // Phase-2 costs in minimize orientation; slack and artificial columns
    // carry zero cost.
    s.cost.clear();
    s.cost.resize(cols, 0.0);
    let flip = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    for (i, &c) in problem.objective().iter().enumerate() {
        s.cost[i] = flip * c;
    }

    StandardForm {
        rows: m,
        cols,
        n_structural: n,
        artificial_start,
    }
}

/// Accumulates duplicate terms on the same row (the dense builder uses `+=`).
fn push_coefficient(column: &mut Vec<(usize, f64)>, row: usize, coeff: f64) {
    if let Some(entry) = column.iter_mut().find(|(r, _)| *r == row) {
        entry.1 += coeff;
    } else {
        column.push((row, coeff));
    }
}

fn effective_op(op: ConstraintOp, flipped: bool) -> ConstraintOp {
    if !flipped {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

/// Gauss–Jordan inversion of the basis matrix into `s.binv`.
/// Returns `false` when the basis is singular (warm start must be abandoned).
fn factorize(s: &mut Scratch, form: &StandardForm) -> bool {
    let m = form.rows;
    // Dense copy of the basis matrix (column j = basis column j), in the
    // reusable scratch buffer so warm solves do not allocate.
    s.factor_work.clear();
    s.factor_work.resize(m * m, 0.0);
    for (j, &col) in s.basis.iter().enumerate() {
        if col >= form.cols {
            return false;
        }
        for &(row, coeff) in &s.columns[col] {
            s.factor_work[row * m + j] = coeff;
        }
    }
    s.binv.clear();
    s.binv.resize(m * m, 0.0);
    for i in 0..m {
        s.binv[i * m + i] = 1.0;
    }

    for pivot in 0..m {
        // Partial pivoting for numerical stability.
        let mut best_row = pivot;
        let mut best_abs = s.factor_work[pivot * m + pivot].abs();
        for r in pivot + 1..m {
            let a = s.factor_work[r * m + pivot].abs();
            if a > best_abs {
                best_abs = a;
                best_row = r;
            }
        }
        if best_abs < 1e-12 {
            return false;
        }
        if best_row != pivot {
            // Row swaps are elementary operations applied to both sides of
            // [B | I]; the final right side is exactly B^{-1} (with rows in
            // basis order) regardless of the pivoting permutation.
            for c in 0..m {
                s.factor_work.swap(pivot * m + c, best_row * m + c);
                s.binv.swap(pivot * m + c, best_row * m + c);
            }
        }
        let inv = 1.0 / s.factor_work[pivot * m + pivot];
        for c in 0..m {
            s.factor_work[pivot * m + c] *= inv;
            s.binv[pivot * m + c] *= inv;
        }
        for r in 0..m {
            if r == pivot {
                continue;
            }
            let factor = s.factor_work[r * m + pivot];
            if factor != 0.0 {
                for c in 0..m {
                    s.factor_work[r * m + c] -= factor * s.factor_work[pivot * m + c];
                    s.binv[r * m + c] -= factor * s.binv[pivot * m + c];
                }
            }
        }
    }

    s.in_basis.clear();
    s.in_basis.resize(form.cols, false);
    for &col in &s.basis {
        s.in_basis[col] = true;
    }
    true
}

/// `xb = B^{-1} b`.
fn compute_xb(s: &mut Scratch, form: &StandardForm) {
    let m = form.rows;
    s.xb.clear();
    s.xb.resize(m, 0.0);
    for i in 0..m {
        let row = &s.binv[i * m..(i + 1) * m];
        s.xb[i] = row.iter().zip(s.b.iter()).map(|(a, b)| a * b).sum();
    }
}

/// Runs one phase of the revised simplex to optimality.
fn run_revised_phase(
    s: &mut Scratch,
    form: &StandardForm,
    phase: Phase,
    options: &SimplexOptions,
    iterations: &mut usize,
) -> Result<()> {
    let m = form.rows;
    let mut phase_pivots = 0usize;
    loop {
        if *iterations >= options.max_iterations {
            return Err(LpError::IterationLimit {
                iterations: *iterations,
            });
        }
        let use_bland = phase_pivots >= options.bland_threshold;

        // Duals: y = c_B^T B^{-1} for the phase's cost vector.
        s.y.clear();
        s.y.resize(m, 0.0);
        for (i, &basic_col) in s.basis.iter().enumerate() {
            let c = match phase {
                Phase::One => {
                    if basic_col >= form.artificial_start {
                        1.0
                    } else {
                        0.0
                    }
                }
                Phase::Two => s.cost[basic_col],
            };
            if c != 0.0 {
                let row = &s.binv[i * m..(i + 1) * m];
                for (yj, &bij) in s.y.iter_mut().zip(row.iter()) {
                    *yj += c * bij;
                }
            }
        }

        // Pricing: most negative reduced cost (Dantzig), or first negative
        // (Bland) once the phase is suspected of cycling.
        let limit = match phase {
            // Never let an artificial column re-enter during phase 2.
            Phase::Two => form.artificial_start,
            Phase::One => form.cols,
        };
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..limit {
            if s.in_basis[j] {
                continue;
            }
            let cj = match phase {
                Phase::One => {
                    if j >= form.artificial_start {
                        1.0
                    } else {
                        0.0
                    }
                }
                Phase::Two => s.cost[j],
            };
            let ya: f64 = s.columns[j].iter().map(|&(r, v)| s.y[r] * v).sum();
            let reduced = cj - ya;
            if reduced < -options.tolerance {
                if use_bland {
                    entering = Some((j, reduced));
                    break;
                }
                if entering.is_none_or(|(_, best)| reduced < best) {
                    entering = Some((j, reduced));
                }
            }
        }
        let Some((entering, _)) = entering else {
            return Ok(()); // optimal for this phase
        };

        // Direction: u = B^{-1} a_j.
        s.u.clear();
        s.u.resize(m, 0.0);
        for &(r, v) in &s.columns[entering] {
            if v != 0.0 {
                for i in 0..m {
                    s.u[i] += s.binv[i * m + r] * v;
                }
            }
        }

        // Ratio test.
        let mut leaving: Option<(usize, f64)> = None;
        for i in 0..m {
            let ui = s.u[i];
            if ui > options.tolerance {
                let ratio = s.xb[i] / ui;
                let better = match leaving {
                    None => true,
                    Some((li, lratio)) => {
                        if use_bland {
                            ratio < lratio - options.tolerance
                                || ((ratio - lratio).abs() <= options.tolerance
                                    && s.basis[i] < s.basis[li])
                        } else {
                            ratio < lratio - options.tolerance
                                || ((ratio - lratio).abs() <= options.tolerance && ui > s.u[li])
                        }
                    }
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
        }
        let Some((leaving, _)) = leaving else {
            return match phase {
                // The phase-1 objective is bounded below by zero, so a missing
                // leaving row there signals numerical breakdown; surface it as
                // infeasibility exactly like the dense solver does.
                Phase::One => Err(LpError::Infeasible),
                Phase::Two => Err(LpError::Unbounded),
            };
        };

        pivot_update(s, form, leaving, entering);
        *iterations += 1;
        phase_pivots += 1;
    }
}

/// Dual-simplex repair for a warm-started basis that lost primal feasibility.
///
/// Preconditions: `binv`, `xb`, `basis`, `in_basis` describe a factorized
/// basis whose reduced costs are (near-)non-negative — true for a basis that
/// was optimal before a small data perturbation.  Each iteration drives the
/// most negative basic value out of the basis, choosing the entering column
/// by the dual ratio test so reduced costs stay non-negative.  Returns `true`
/// when the basis became primal feasible; `false` when the start was not dual
/// feasible, the pivot budget ran out, or the program appears infeasible —
/// in every failure case the caller cold-solves, so this function never has
/// to render a verdict on its own.
fn run_dual_repair(
    s: &mut Scratch,
    form: &StandardForm,
    options: &SimplexOptions,
    iterations: &mut usize,
) -> bool {
    let m = form.rows;
    // A perturbed-but-recent basis should repair in a few pivots; cap the
    // budget so a pathological basis cannot cost much more than a cold solve
    // (dual pivots and cold primal pivots have the same O(m²) cost).
    let budget = (4 * m + 32).min(options.max_iterations.saturating_sub(*iterations));

    for _ in 0..budget {
        // Leaving row: most negative basic value.
        let mut leaving: Option<(usize, f64)> = None;
        for (i, &v) in s.xb.iter().enumerate() {
            if v < -WARM_FEASIBILITY_TOL && leaving.is_none_or(|(_, best)| v < best) {
                leaving = Some((i, v));
            }
        }
        let Some((row, _)) = leaving else {
            return true; // primal feasible
        };

        // Duals for the phase-2 costs (needed for the dual ratio test).
        s.y.clear();
        s.y.resize(m, 0.0);
        for (i, &basic_col) in s.basis.iter().enumerate() {
            let c = s.cost[basic_col];
            if c != 0.0 {
                let binv_row = &s.binv[i * m..(i + 1) * m];
                for (yj, &bij) in s.y.iter_mut().zip(binv_row.iter()) {
                    *yj += c * bij;
                }
            }
        }

        // Entering column: minimize d_j / (-alpha_j) over nonbasic real
        // columns with alpha_j < 0, where alpha_j = (B^{-1})_row · a_j.
        // Small negative reduced costs (the perturbation can nudge a
        // previously-optimal basis slightly dual-infeasible) are clamped to
        // zero in the ratio: correctness does not depend on maintaining dual
        // feasibility here, because the subsequent primal phase 2 restores
        // optimality from any primal-feasible basis — the repair only has to
        // terminate, which the pivot budget guarantees.
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..form.artificial_start {
            if s.in_basis[j] {
                continue;
            }
            let mut alpha = 0.0;
            let mut reduced = s.cost[j];
            for &(r, v) in &s.columns[j] {
                alpha += s.binv[row * m + r] * v;
                reduced -= s.y[r] * v;
            }
            if alpha < -options.tolerance {
                let ratio = reduced.max(0.0) / -alpha;
                if entering.is_none_or(|(_, best)| ratio < best) {
                    entering = Some((j, ratio));
                }
            }
        }
        let Some((entering, _)) = entering else {
            // No eligible column: the row proves (restricted) infeasibility,
            // but let the cold path confirm it.
            return false;
        };

        // Direction u = B^{-1} a_entering, then the usual rank-one update.
        s.u.clear();
        s.u.resize(m, 0.0);
        for &(r, v) in &s.columns[entering] {
            if v != 0.0 {
                for i in 0..m {
                    s.u[i] += s.binv[i * m + r] * v;
                }
            }
        }
        if s.u[row].abs() <= options.tolerance {
            return false; // numerically degenerate pivot
        }
        pivot_update(s, form, row, entering);
        *iterations += 1;
    }
    false
}

/// Rank-one update of `binv` and `xb` for a pivot on `(row, entering)`.
fn pivot_update(s: &mut Scratch, form: &StandardForm, row: usize, entering: usize) {
    let m = form.rows;
    let pivot_value = s.u[row];
    debug_assert!(pivot_value.abs() > 0.0, "pivot on a zero direction element");

    let inv = 1.0 / pivot_value;
    for c in 0..m {
        s.binv[row * m + c] *= inv;
    }
    s.xb[row] *= inv;

    s.pivot_row.clear();
    s.pivot_row
        .extend_from_slice(&s.binv[row * m..(row + 1) * m]);
    let xb_row = s.xb[row];
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = s.u[i];
        if factor != 0.0 {
            let target = &mut s.binv[i * m..(i + 1) * m];
            for (t, &p) in target.iter_mut().zip(s.pivot_row.iter()) {
                *t -= factor * p;
            }
            s.xb[i] -= factor * xb_row;
        }
    }

    s.in_basis[s.basis[row]] = false;
    s.in_basis[entering] = true;
    s.basis[row] = entering;
}

/// After phase 1, pivots artificial variables (at value zero) out of the
/// basis where possible; redundant rows keep their artificial at zero, which
/// is harmless because their direction component stays zero for every real
/// column.
fn drive_out_artificials(s: &mut Scratch, form: &StandardForm, options: &SimplexOptions) {
    let m = form.rows;
    for row in 0..m {
        if s.basis[row] < form.artificial_start {
            continue;
        }
        let binv_row: Vec<f64> = s.binv[row * m..(row + 1) * m].to_vec();
        let mut replacement = None;
        for j in 0..form.artificial_start {
            if s.in_basis[j] {
                continue;
            }
            let w: f64 = s.columns[j].iter().map(|&(r, v)| binv_row[r] * v).sum();
            if w.abs() > options.tolerance {
                replacement = Some(j);
                break;
            }
        }
        if let Some(j) = replacement {
            s.u.clear();
            s.u.resize(m, 0.0);
            for &(r, v) in &s.columns[j] {
                if v != 0.0 {
                    for i in 0..m {
                        s.u[i] += s.binv[i * m + r] * v;
                    }
                }
            }
            pivot_update(s, form, row, j);
        }
    }
}

/// Reads the structural solution out of the basic values and recomputes the
/// objective from the primal point (exactly like the dense solver).
fn extract_solution(
    s: &mut Scratch,
    form: &StandardForm,
    problem: &Problem,
    iterations: usize,
    warm_start: bool,
) -> Solution {
    s.values.clear();
    s.values.resize(form.n_structural, 0.0);
    for (i, &basic_col) in s.basis.iter().enumerate() {
        if basic_col < form.n_structural {
            s.values[basic_col] = s.xb[i];
        }
    }
    // Clamp round-off negatives to zero; legitimate tiny positives survive
    // (variables are non-negative by construction, so any negative here is
    // numerical noise from the basis updates).
    for v in &mut s.values {
        if *v < 0.0 {
            *v = 0.0;
        }
    }

    let mut objective_value: f64 = problem
        .objective()
        .iter()
        .zip(s.values.iter())
        .map(|(c, x)| c * x)
        .sum();
    if objective_value.abs() < 1e-12 {
        objective_value = 0.0;
    }
    let stats = SolverStats {
        iterations,
        rows: form.rows,
        columns: form.cols,
        warm_start,
    };
    Solution::new(s.values.clone(), objective_value, stats)
}

/// Interior-mutable, thread-safe wrapper around a [`SolverContext`].
///
/// Allocation policies take `&self` (the [`AllocationPolicy`]-style traits
/// downstream are object-safe and shared across threads), yet warm-starting
/// needs mutable solver state.  `ContextCell` bridges the two: policies store
/// one cell and call [`ContextCell::solve`] from `&self`, while the cached
/// basis and buffers persist across rounds behind a mutex.
///
/// Cloning produces a *fresh* cell with the same options: solver caches are
/// per-instance working state, not part of a policy's identity.  For the same
/// reason cells compare equal to each other and serialize as `null`.
///
/// [`AllocationPolicy`]: https://docs.rs/oef-core
#[derive(Debug, Default)]
pub struct ContextCell {
    inner: std::sync::Mutex<SolverContext>,
}

impl ContextCell {
    /// Cell with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cell with explicit solver options.
    pub fn with_options(options: SimplexOptions) -> Self {
        Self {
            inner: std::sync::Mutex::new(SolverContext::with_options(options)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SolverContext> {
        // A panic mid-solve leaves only scratch buffers in an odd state; the
        // next solve rebuilds them, so poisoning is safe to ignore.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Solves through the shared context (see [`SolverContext::solve`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`SolverContext::solve`].
    pub fn solve(&self, problem: &Problem) -> Result<Solution> {
        self.lock().solve(problem)
    }

    /// Solves through the shared context with the caller's options, re-syncing
    /// the context's options first (see [`SolverContext::solve_with`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`SolverContext::solve`].
    pub fn solve_with(&self, problem: &Problem, options: &SimplexOptions) -> Result<Solution> {
        self.lock().solve_with(problem, options)
    }

    /// Warm/cold counters of the underlying context.
    pub fn stats(&self) -> ContextStats {
        self.lock().stats()
    }

    /// Whether the most recent solve warm-started.
    pub fn last_was_warm(&self) -> bool {
        self.lock().last_was_warm()
    }

    /// Drops the cached basis.
    pub fn invalidate(&self) {
        self.lock().invalidate();
    }

    /// Direct mutable access when the cell is uniquely owned.
    pub fn get_mut(&mut self) -> &mut SolverContext {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Clone for ContextCell {
    fn clone(&self) -> Self {
        Self::with_options(self.lock().options().clone())
    }
}

impl PartialEq for ContextCell {
    /// Solver caches are working state, not identity: all cells are equal.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for ContextCell {}

impl serde::Serialize for ContextCell {
    fn serialize(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for ContextCell {
    fn deserialize(_value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense, Variable};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    fn textbook_problem() -> (Problem, Variable, Variable) {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 3.0);
        p.set_objective_coefficient(y, 5.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        (p, x, y)
    }

    #[test]
    fn cold_solve_matches_dense_on_textbook_problem() {
        let (p, x, y) = textbook_problem();
        let mut ctx = SolverContext::new();
        let s = ctx.solve(&p).unwrap();
        assert_close(s.objective_value(), 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
        assert!(!s.stats().warm_start);
        assert_eq!(ctx.stats().cold_solves, 1);
    }

    #[test]
    fn warm_solve_on_identical_problem_takes_zero_pivots() {
        let (p, _, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        let cold = ctx.solve(&p).unwrap();
        let warm = ctx.solve(&p).unwrap();
        assert!(warm.stats().warm_start);
        assert_eq!(
            warm.stats().iterations,
            0,
            "optimal basis should be reused as-is"
        );
        assert_close(warm.objective_value(), cold.objective_value());
        assert!(ctx.last_was_warm());
        assert_eq!(ctx.stats().warm_solves, 1);
    }

    #[test]
    fn warm_solve_tracks_objective_perturbation() {
        let (mut p, x, y) = textbook_problem();
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();
        p.update_objective_coefficient(x, 4.0);
        let warm = ctx.solve(&p).unwrap();
        assert!(warm.stats().warm_start);
        let dense = p.solve().unwrap();
        assert_close(warm.objective_value(), dense.objective_value());
        assert_close(warm.value(x), dense.value(x));
        assert_close(warm.value(y), dense.value(y));
    }

    #[test]
    fn warm_solve_tracks_rhs_update() {
        let (mut p, _, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();
        p.update_rhs(2, 20.0);
        let warm = ctx.solve(&p).unwrap();
        let dense = p.solve().unwrap();
        assert_close(warm.objective_value(), dense.objective_value());
    }

    #[test]
    fn ge_and_eq_constraints_cold_solve() {
        // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 0.12);
        p.set_objective_coefficient(y, 0.15);
        p.add_constraint(&[(x, 60.0), (y, 60.0)], ConstraintOp::Ge, 300.0);
        p.add_constraint(&[(x, 12.0), (y, 6.0)], ConstraintOp::Ge, 36.0);
        p.add_constraint(&[(x, 10.0), (y, 30.0)], ConstraintOp::Ge, 90.0);
        let mut ctx = SolverContext::new();
        let s = ctx.solve(&p).unwrap();
        assert_close(s.objective_value(), 0.66);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
        // Warm re-solve with a perturbed RHS still agrees with dense.
        p.update_rhs(0, 320.0);
        let warm = ctx.solve(&p).unwrap();
        let dense = p.solve().unwrap();
        assert_close(warm.objective_value(), dense.objective_value());
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut infeasible = Problem::new(Sense::Maximize);
        let x = infeasible.add_variable("x");
        infeasible.set_objective_coefficient(x, 1.0);
        infeasible.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 5.0);
        infeasible.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        assert_eq!(
            SolverContext::new().solve(&infeasible).unwrap_err(),
            LpError::Infeasible
        );

        let mut unbounded = Problem::new(Sense::Maximize);
        let x = unbounded.add_variable("x");
        let y = unbounded.add_variable("y");
        unbounded.set_objective_coefficient(x, 1.0);
        unbounded.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(
            SolverContext::new().solve(&unbounded).unwrap_err(),
            LpError::Unbounded
        );
    }

    #[test]
    fn shape_change_falls_back_to_cold() {
        let (p, _, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();

        // Different shape: one extra constraint.
        let (mut p2, x, y) = textbook_problem();
        p2.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 7.0);
        let s = ctx.solve(&p2).unwrap();
        assert!(!s.stats().warm_start, "shape change must cold-solve");
        assert_eq!(ctx.stats().cold_solves, 2);
        let dense = p2.solve().unwrap();
        assert_close(s.objective_value(), dense.objective_value());
    }

    #[test]
    fn rhs_sign_flip_changes_shape_and_cold_solves() {
        // Flipping the sign of a RHS changes the effective operator, so the
        // standard-form layout (and the signature) must change with it.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 2.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 5.0);
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();

        p.update_rhs(0, -2.0); // x - y <= -2 becomes a >= row after normalisation
        let s = ctx.solve(&p).unwrap();
        assert!(!s.stats().warm_start);
        let dense = p.solve().unwrap();
        assert_close(s.objective_value(), dense.objective_value());
    }

    #[test]
    fn infeasible_after_update_is_reported_not_cached() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective_coefficient(x, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        let mut ctx = SolverContext::new();
        assert!(ctx.solve(&p).is_ok());

        // Same shape, but now x >= 5 and x <= 3: infeasible.
        p.update_rhs(0, 5.0);
        assert_eq!(ctx.solve(&p).unwrap_err(), LpError::Infeasible);
        // The context recovers on the next solvable update.
        p.update_rhs(0, 2.0);
        let s = ctx.solve(&p).unwrap();
        assert_close(s.objective_value(), 3.0);
    }

    #[test]
    fn degenerate_problem_terminates_with_bland_fallback() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(x, 2.0), (y, 1.0)], ConstraintOp::Le, 2.0);
        // Force Bland's rule from the first pivot: termination is then
        // guaranteed even on this degenerate vertex.
        let options = SimplexOptions {
            bland_threshold: 0,
            ..SimplexOptions::default()
        };
        let mut ctx = SolverContext::with_options(options);
        let s = ctx.solve(&p).unwrap();
        assert_close(s.objective_value(), 1.0);
        // Warm re-solve of the same degenerate program also terminates.
        let warm = ctx.solve(&p).unwrap();
        assert!(warm.stats().warm_start);
        assert_close(warm.objective_value(), 1.0);
    }

    #[test]
    fn tiny_pivot_budget_falls_back_to_dense_reference() {
        let (p, _, _) = textbook_problem();
        // One pivot is not enough for the revised path, so the context must
        // silently defer to the dense solver... which also fails with the
        // same budget — the error is reported faithfully.
        let options = SimplexOptions {
            max_iterations: 0,
            ..SimplexOptions::default()
        };
        let mut ctx = SolverContext::with_options(options);
        assert!(matches!(ctx.solve(&p), Err(LpError::IterationLimit { .. })));
        assert_eq!(ctx.stats().dense_fallbacks, 1);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 2.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 4.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], ConstraintOp::Eq, 8.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        let mut ctx = SolverContext::new();
        let s = ctx.solve(&p).unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 1.0);
        let warm = ctx.solve(&p).unwrap();
        assert_close(warm.objective_value(), 7.0);
    }

    #[test]
    fn equal_throughput_structure_matches_dense() {
        // The miniature non-cooperative OEF program from the dense solver's
        // test-suite: warm-started round sequence must match dense exactly.
        let build = |w22: f64| {
            let mut p = Problem::new(Sense::Maximize);
            let x11 = p.add_variable("x11");
            let x12 = p.add_variable("x12");
            let x21 = p.add_variable("x21");
            let x22 = p.add_variable("x22");
            for (v, c) in [(x11, 1.0), (x12, 2.0), (x21, 1.0), (x22, w22)] {
                p.set_objective_coefficient(v, c);
            }
            p.add_constraint(&[(x11, 1.0), (x21, 1.0)], ConstraintOp::Le, 1.0);
            p.add_constraint(&[(x12, 1.0), (x22, 1.0)], ConstraintOp::Le, 1.0);
            p.add_constraint(
                &[(x11, 1.0), (x12, 2.0), (x21, -1.0), (x22, -w22)],
                ConstraintOp::Eq,
                0.0,
            );
            p
        };
        let mut ctx = SolverContext::new();
        for (round, w22) in [5.0, 5.1, 4.9, 5.05, 5.0].into_iter().enumerate() {
            let p = build(w22);
            let s = ctx.solve(&p).unwrap();
            let dense = p.solve().unwrap();
            assert!(
                (s.objective_value() - dense.objective_value()).abs() < 1e-6,
                "round {round}: revised {} vs dense {}",
                s.objective_value(),
                dense.objective_value()
            );
            if round > 0 {
                assert!(s.stats().warm_start, "round {round} should warm-start");
            }
        }
    }
}
