//! Warm-start capable revised simplex and the reusable [`SolverContext`].
//!
//! The dense two-phase solver in [`crate::simplex`] rebuilds and pivots a full
//! `m x (cols+1)` tableau on every call, which is wasteful for the OEF
//! scheduling loop: every round (and every strategy-proofness probe) solves a
//! program with the *same shape* — identical constraint operators and
//! dimensions — where only the speedup coefficients and capacities moved.  The
//! optimal basis barely changes between consecutive rounds.
//!
//! This module implements the revised simplex method on top of a **sparse LU
//! factorization with eta-file updates** ([`crate::factor`]):
//!
//! * the constraint matrix is stored **sparse by column** and never modified;
//! * `B⁻¹` is never formed — directions (`ftran`), duals (`btran`) and single
//!   `B⁻¹` rows come from sparse triangular solves against `L`, `U` and the
//!   eta stack, so per-iteration cost follows the *nonzeros* of the basis,
//!   not `m²`;
//! * a pivot appends one sparse eta vector (`O(nnz)`), and the factorization
//!   is rebuilt only when the eta file outgrows its bound or the basic
//!   solution drifts from `B x_B = b` past tolerance;
//! * entering columns are priced **partially**: Dantzig's rule over a
//!   candidate list that is re-priced each iteration and refilled by a
//!   rotating scan, so steady-state iterations do not touch every column.
//!
//! [`SolverContext`] owns every buffer the solver needs so repeated solves do
//! not reallocate, and it caches the optimal basis of the last solve.  When
//! asked to solve a problem whose [shape
//! signature](crate::Problem::shape_signature) matches the cached one, it
//! *warm-starts*: refactorize the cached basis against the new coefficients,
//! dual-simplex repair if primal feasibility was lost, and run phase 2 from a
//! (usually near-optimal) starting point.  When the shape changed through
//! tracked **churn edits** ([`crate::Problem::add_tenant_rows`] /
//! [`crate::Problem::remove_tenant_rows`]), the cached basis is *remapped*
//! onto the new standard form — one tenant joining or leaving becomes a basis
//! repair instead of a cold solve.  On an untracked shape change, a singular
//! or unusable cached basis, or any numerical trouble, it falls back to a
//! cold solve; if the revised cold path itself hits its iteration limit the
//! context falls all the way back to the dense reference solver, so
//! `SolverContext::solve` never reports worse answers than
//! [`crate::Problem::solve_with`].

use crate::attrib::{AttributionReport, TenantWork};
use crate::error::LpError;
use crate::factor::{BasisFactor, FactorCounters};
use crate::problem::{ConstraintOp, Problem, Sense, NO_OWNER};
use crate::simplex::{SimplexOptions, SolverStats};
use crate::solution::Solution;
use crate::Result;

/// Feasibility slack accepted when deciding whether a cached basis is still
/// primal feasible for the updated right-hand side.
const WARM_FEASIBILITY_TOL: f64 = 1e-7;

/// Pivots between drift residual checks (`‖B x_B − b‖∞` against the sparse
/// basis columns).  Checking is `O(nnz(B))`, so a modest cadence keeps the
/// cost invisible while bounding how far accumulated eta round-off can run.
const DRIFT_CHECK_INTERVAL: usize = 48;

/// Relative drift tolerance: a residual above `DRIFT_TOL * (1 + ‖b‖∞)`
/// forces a refactorization even if the eta file is still short.
const DRIFT_TOL: f64 = 1e-6;

/// Cap on the pricing candidate list refilled by each rotating scan.
const PRICING_CANDIDATES: usize = 64;

/// Reusable solver state: buffers plus the cached basis of the last solve.
///
/// ```
/// use oef_lp::{ConstraintOp, Problem, Sense, SolverContext};
///
/// let mut p = Problem::new(Sense::Maximize);
/// let x = p.add_variable("x");
/// let y = p.add_variable("y");
/// p.set_objective_coefficient(x, 3.0);
/// p.set_objective_coefficient(y, 5.0);
/// p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
/// p.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
/// p.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
///
/// let mut ctx = SolverContext::new();
/// let cold = ctx.solve(&p).unwrap();
/// assert!(!cold.stats().warm_start);
///
/// // Same shape, perturbed data: the second solve starts from the cached basis.
/// p.update_rhs(2, 20.0);
/// let warm = ctx.solve(&p).unwrap();
/// assert!(warm.stats().warm_start);
/// assert!((warm.objective_value() - 38.0).abs() < 1e-6);
/// ```
#[derive(Debug, Default)]
pub struct SolverContext {
    options: SimplexOptions,
    cache: Option<BasisCache>,
    warm_solves: u64,
    cold_solves: u64,
    dense_fallbacks: u64,
    basis_repairs: u64,
    churn_repairs: u64,
    last_was_warm: bool,
    scratch: Scratch,
}

/// What kind of standard-form column a cached basic column was — the key for
/// remapping a basis across churn edits, where raw column indices shift but
/// "the slack of row r" / "structural variable v" stay meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    /// Structural variable by problem index.
    Structural(usize),
    /// Slack/surplus column of a constraint row.
    Slack(usize),
    /// Artificial column of a constraint row.
    Artificial(usize),
}

#[derive(Debug, Clone)]
struct BasisCache {
    signature: u64,
    basis: Vec<usize>,
    /// Per cached row: what its basic column *was* (see [`ColKind`]).
    kinds: Vec<ColKind>,
    /// Churn lineage of the problem the basis came from.
    instance: u64,
    epoch: u64,
}

/// Counters describing how a context's solves were served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Solves that started from the cached basis.
    pub warm_solves: u64,
    /// Solves that ran the two-phase revised simplex from scratch.
    pub cold_solves: u64,
    /// Cold solves that additionally fell back to the dense reference solver.
    pub dense_fallbacks: u64,
    /// Warm solves that needed dual-simplex pivots to restore primal
    /// feasibility before phase 2 (perturbed data moved the old vertex).
    pub basis_repairs: u64,
    /// Warm solves served across a tracked churn edit (tenant join/leave) by
    /// remapping the cached basis onto the new shape.
    pub churn_repairs: u64,
    /// Sparse LU (re)factorizations of the basis over the context's lifetime.
    pub refactorizations: u64,
    /// Pivots applied as eta-file appends (product-form updates).
    pub eta_pivots: u64,
    /// Refactorizations forced by the drift residual check rather than the
    /// eta-file length bound.
    pub drift_refactorizations: u64,
}

/// All reusable buffers, kept out of `SolverContext`'s public face.
#[derive(Debug, Default)]
struct Scratch {
    /// Sparse standard-form matrix, by column: `(row, coefficient)` pairs.
    columns: Vec<Vec<(usize, f64)>>,
    /// Non-negative right-hand side.
    b: Vec<f64>,
    /// Phase-2 cost vector (minimize orientation).
    cost: Vec<f64>,
    /// Sparse LU factors + eta file standing in for the basis inverse.
    factor: BasisFactor,
    /// Current basic solution `B^{-1} b` (by basis position).
    xb: Vec<f64>,
    /// Dual prices `c_B^T B^{-1}` (by constraint row).
    y: Vec<f64>,
    /// Direction column `B^{-1} a_j` (by basis position).
    u: Vec<f64>,
    /// One row of `B^{-1}` (by constraint row), for the dual ratio test.
    rho: Vec<f64>,
    /// Basis costs fed to btran (by basis position).
    cb: Vec<f64>,
    /// Dense scatter buffer for one sparse column (by constraint row).
    arhs: Vec<f64>,
    /// Unit-vector buffer for `btran_unit`.
    unit: Vec<f64>,
    /// Current basis: column index per row.
    basis: Vec<usize>,
    /// Membership flag per column.
    in_basis: Vec<bool>,
    /// What each standard-form column is (structural/slack/artificial).
    col_owner: Vec<ColKind>,
    /// Slack (or surplus) column per row, when the row has one.
    slack_of_row: Vec<Option<usize>>,
    /// Artificial column per row, when the row has one.
    artificial_of_row: Vec<Option<usize>>,
    /// Partial-pricing candidate list and rotating scan cursor.
    candidates: Vec<usize>,
    scan_cursor: usize,
    /// Pivots since the last drift residual check.
    pivots_since_drift_check: usize,
    /// Lifetime count of drift-forced refactorizations.
    drift_refactorizations: u64,
    /// Dual-repair pivots spent in the current solve.
    repair_pivots: usize,
    /// Factor counters at the start of the current solve (per-solve stats).
    factor_base: FactorCounters,
    /// Attribution owner slot per standard-form column (slack/artificial
    /// columns inherit their row's owner).  Empty when the problem declared
    /// no owner maps — all work then lands in `attrib.unattributed`.
    attrib_col_slot: Vec<u32>,
    /// Attribution owner slot per constraint row.
    attrib_row_slot: Vec<u32>,
    /// Number of owner slots the current problem's maps span.
    attrib_slots: usize,
    /// Per-solve work attribution, reset at the top of each solve.
    attrib: AttributionReport,
    /// Owner slot of the most recent pivot's entering column — the owner a
    /// subsequent eta-growth refactorization is billed to.
    attrib_last_slot: u32,
    /// Extracted structural values.
    values: Vec<f64>,
}

impl Scratch {
    /// Zeroes the attribution report and sizes it for the current owner maps.
    fn reset_attribution(&mut self) {
        self.attrib_last_slot = NO_OWNER;
        self.attrib.unattributed = TenantWork::default();
        self.attrib.slots.clear();
        self.attrib
            .slots
            .resize(self.attrib_slots, TenantWork::default());
    }

    /// The work cell a given owner slot charges into.  Out-of-range slots —
    /// including [`NO_OWNER`] — fall through to the unattributed bucket, so
    /// charging is total: no branch on whether attribution is enabled.
    #[inline]
    fn attrib_cell(&mut self, slot: u32) -> &mut TenantWork {
        match self.attrib.slots.get_mut(slot as usize) {
            Some(cell) => cell,
            None => &mut self.attrib.unattributed,
        }
    }
}

/// Standard-form layout shared by the cold and warm paths.
struct StandardForm {
    rows: usize,
    cols: usize,
    n_structural: usize,
    artificial_start: usize,
}

impl SolverContext {
    /// Context with default [`SimplexOptions`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Context with explicit solver options.
    pub fn with_options(options: SimplexOptions) -> Self {
        Self {
            options,
            ..Self::default()
        }
    }

    /// The options this context solves with.
    pub fn options(&self) -> &SimplexOptions {
        &self.options
    }

    /// Whether the most recent [`SolverContext::solve`] warm-started.
    pub fn last_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Warm/cold/repair counters for this context.
    pub fn stats(&self) -> ContextStats {
        let fc = self.scratch.factor.counters();
        ContextStats {
            warm_solves: self.warm_solves,
            cold_solves: self.cold_solves,
            dense_fallbacks: self.dense_fallbacks,
            basis_repairs: self.basis_repairs,
            churn_repairs: self.churn_repairs,
            refactorizations: fc.refactorizations,
            eta_pivots: fc.eta_pivots,
            drift_refactorizations: self.scratch.drift_refactorizations,
        }
    }

    /// Per-owner work attribution of the most recent solve.  `slots` is
    /// empty when the solved problem declared no owner maps (see
    /// [`Problem::set_attribution_owners`]); every count then sits in
    /// [`AttributionReport::unattributed`].
    pub fn last_attribution(&self) -> &AttributionReport {
        &self.scratch.attrib
    }

    /// Drops the cached basis, forcing the next solve to run cold.
    pub fn invalidate(&mut self) {
        self.cache = None;
    }

    /// Solves with the given options, updating the context's options first if
    /// they differ.  The cached basis stays valid across option changes (it
    /// describes the previous optimum, not the tolerances used to reach it).
    ///
    /// This is how policies keep a *public* `solver_options` field
    /// authoritative while the context holds the reusable state: every solve
    /// re-syncs from the field.
    ///
    /// # Errors
    ///
    /// Same contract as [`SolverContext::solve`].
    pub fn solve_with(&mut self, problem: &Problem, options: &SimplexOptions) -> Result<Solution> {
        if self.options != *options {
            self.options = options.clone();
        }
        self.solve(problem)
    }

    /// Solves `problem`, warm-starting from the previous optimal basis when
    /// the problem shape is unchanged — or when it changed only through
    /// tracked churn edits, in which case the cached basis is remapped and
    /// repaired instead of discarded.
    ///
    /// # Errors
    ///
    /// Same contract as [`Problem::solve_with`]: validation errors,
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`].
    pub fn solve(&mut self, problem: &Problem) -> Result<Solution> {
        problem.validate()?;
        let signature = problem.shape_signature();
        let form = build_standard_form(problem, &mut self.scratch);
        self.scratch.factor_base = self.scratch.factor.counters();
        self.scratch.repair_pivots = 0;
        // One reset per solve() call: cold_solve rebuilds the standard form
        // after a failed warm attempt, and that attempt's work must stay in
        // the report for the totals to match the factor-counter deltas.
        self.scratch.reset_attribution();

        if let Some(cache) = self.cache.take() {
            if cache.signature == signature && cache.basis.len() == form.rows {
                if let Some(solution) = self.try_warm(problem, &form, &cache.basis)? {
                    self.finish_warm(problem, &form, signature, false);
                    return Ok(solution);
                }
            } else if cache.instance == problem.churn_instance() {
                // Shape changed, but through edits the problem journaled:
                // remap the cached basis onto the new standard form and let
                // the usual repair machinery absorb the delta.
                if let Some(basis) = remap_churn_basis(&self.scratch, &form, problem, &cache) {
                    if let Some(solution) = self.try_warm(problem, &form, &basis)? {
                        self.finish_warm(problem, &form, signature, true);
                        return Ok(solution);
                    }
                }
            }
        }

        self.last_was_warm = false;
        self.cold_solves += 1;
        match self.cold_solve(problem, &form) {
            Ok(solution) => {
                self.cache = Some(make_cache(&self.scratch, problem, signature));
                Ok(solution)
            }
            Err(LpError::IterationLimit { .. }) => {
                // Numerical trouble (e.g. cycling beyond the pivot budget, or
                // an unfactorizable basis mid-phase): defer to the dense
                // reference solver rather than failing.
                self.dense_fallbacks += 1;
                self.cache = None;
                problem.solve_with(&self.options)
            }
            Err(other) => {
                self.cache = None;
                Err(other)
            }
        }
    }

    /// Books a successful warm solve: counters, warm flag, fresh cache.
    fn finish_warm(
        &mut self,
        problem: &Problem,
        _form: &StandardForm,
        signature: u64,
        churn: bool,
    ) {
        self.warm_solves += 1;
        self.last_was_warm = true;
        if churn {
            self.churn_repairs += 1;
        }
        if self.scratch.repair_pivots > 0 {
            self.basis_repairs += 1;
        }
        self.cache = Some(make_cache(&self.scratch, problem, signature));
    }

    /// Attempts a warm-started phase-2 solve from `basis`.  Returns
    /// `Ok(None)` when the cached basis is unusable (singular, unrepairable,
    /// or phase 2 ran out of pivots) so the caller can fall back to a cold
    /// solve.
    fn try_warm(
        &mut self,
        problem: &Problem,
        form: &StandardForm,
        basis: &[usize],
    ) -> Result<Option<Solution>> {
        let s = &mut self.scratch;
        s.basis.clear();
        s.basis.extend_from_slice(basis);
        if !refactorize_current(s, form) {
            return Ok(None);
        }
        compute_xb(s);

        let mut iterations = 0usize;
        if s.xb.iter().any(|&v| v < -WARM_FEASIBILITY_TOL) {
            // The basis is no longer primal feasible for the perturbed data —
            // the typical steady-state case when constraint coefficients (not
            // just the objective) moved, and the *expected* state after a
            // churn remap (a joining tenant's equal-throughput row starts
            // violated).  It is usually still (near-)dual feasible, so a
            // short dual-simplex repair restores primal feasibility in a
            // handful of pivots instead of a full two-phase cold solve.
            if !run_dual_repair(s, form, &self.options, &mut iterations) {
                // Not dual feasible either (or the repair stalled, or the
                // program looks infeasible from here): let the cold path
                // re-derive the answer from scratch rather than trusting a
                // perturbed basis for a hard verdict.
                return Ok(None);
            }
        }

        // Artificial columns left in the basis (redundant rows, or rows a
        // churn remap seeded with their artificial) must sit at zero after
        // the repair; a positive value means the basis pads a violated
        // constraint and cannot certify an optimum.
        let artificials_ok = s
            .basis
            .iter()
            .zip(s.xb.iter())
            .all(|(&col, &v)| col < form.artificial_start || v.abs() <= WARM_FEASIBILITY_TOL);
        if !artificials_ok {
            return Ok(None);
        }

        for v in &mut s.xb {
            if *v < 0.0 {
                *v = 0.0;
            }
        }

        match run_revised_phase(s, form, Phase::Two, &self.options, &mut iterations) {
            Ok(()) => Ok(Some(extract_solution(s, form, problem, iterations, true))),
            Err(LpError::IterationLimit { .. }) => Ok(None),
            Err(other) => Err(other),
        }
    }

    /// Two-phase revised simplex from the all-slack/artificial basis.
    fn cold_solve(&mut self, problem: &Problem, form: &StandardForm) -> Result<Solution> {
        // A preceding (failed) warm attempt may have overwritten the scratch
        // basis with the cached one; rebuild the standard form so the basis
        // is the pristine all-slack/artificial one again.
        build_standard_form(problem, &mut self.scratch);
        let s = &mut self.scratch;
        // The initial basis matrix is the identity (slack +1 or artificial +1
        // per row), which the sparse LU factors without fill.
        if !refactorize_current(s, form) {
            return Err(LpError::IterationLimit { iterations: 0 });
        }
        s.xb.clear();
        s.xb.extend_from_slice(&s.b);

        let mut iterations = 0usize;
        if form.artificial_start < form.cols {
            run_revised_phase(s, form, Phase::One, &self.options, &mut iterations)?;
            let infeasibility: f64 = s
                .basis
                .iter()
                .zip(s.xb.iter())
                .filter(|(&col, _)| col >= form.artificial_start)
                .map(|(_, &v)| v.max(0.0))
                .sum();
            if infeasibility > self.options.tolerance.max(1e-7) {
                return Err(LpError::Infeasible);
            }
            drive_out_artificials(s, form, &self.options);
        }
        run_revised_phase(s, form, Phase::Two, &self.options, &mut iterations)?;
        Ok(extract_solution(s, form, problem, iterations, false))
    }
}

/// Builds a [`BasisCache`] from the scratch state of a just-finished solve.
fn make_cache(s: &Scratch, problem: &Problem, signature: u64) -> BasisCache {
    BasisCache {
        signature,
        basis: s.basis.clone(),
        kinds: s.basis.iter().map(|&col| s.col_owner[col]).collect(),
        instance: problem.churn_instance(),
        epoch: problem.churn_epoch(),
    }
}

/// Maps a cached basis onto the standard form of a churn-edited problem:
/// surviving structural columns follow the variable map, slack/artificial
/// columns follow their row, removed columns and brand-new rows fall back to
/// the new row's own slack/artificial.  Returns `None` when the journal
/// cannot bridge the epochs or no collision-free assignment exists (the
/// caller cold-solves; a singular remap is also caught later by
/// factorization).
fn remap_churn_basis(
    s: &Scratch,
    form: &StandardForm,
    problem: &Problem,
    cache: &BasisCache,
) -> Option<Vec<usize>> {
    let (var_map, row_map) = problem.churn_maps_since(cache.epoch)?;
    if row_map.len() != cache.basis.len() {
        return None;
    }
    let mut used = vec![false; form.cols];
    let mut out = vec![usize::MAX; form.rows];
    for (old_row, kind) in cache.kinds.iter().enumerate() {
        let Some(new_row) = row_map[old_row] else {
            continue;
        };
        let col = match *kind {
            ColKind::Structural(v) => var_map.get(v).copied().flatten(),
            ColKind::Slack(r) => row_map
                .get(r)
                .copied()
                .flatten()
                .and_then(|nr| s.slack_of_row[nr]),
            ColKind::Artificial(r) => row_map
                .get(r)
                .copied()
                .flatten()
                .and_then(|nr| s.artificial_of_row[nr]),
        };
        if let Some(col) = col {
            if !used[col] {
                used[col] = true;
                out[new_row] = col;
            }
        }
    }
    for (row, slot) in out.iter_mut().enumerate() {
        if *slot != usize::MAX {
            continue;
        }
        let own = s.slack_of_row[row]
            .filter(|&c| !used[c])
            .or_else(|| s.artificial_of_row[row].filter(|&c| !used[c]))?;
        used[own] = true;
        *slot = own;
    }
    Some(out)
}

enum Phase {
    One,
    Two,
}

/// Builds the sparse standard form into the context's scratch buffers and
/// sets the initial all-slack/artificial basis.  Mirrors the dense builder in
/// `simplex.rs`: `<=` rows get a slack, `>=` rows a surplus plus artificial,
/// `==` rows an artificial; negative right-hand sides are normalised first.
fn build_standard_form(problem: &Problem, s: &mut Scratch) -> StandardForm {
    let n = problem.num_variables();
    let m = problem.num_constraints();

    let mut n_slack = 0usize;
    let mut n_artificial = 0usize;
    for c in problem.constraints() {
        match effective_op(c.op, c.rhs < 0.0) {
            ConstraintOp::Le => n_slack += 1,
            ConstraintOp::Ge => {
                n_slack += 1;
                n_artificial += 1;
            }
            ConstraintOp::Eq => n_artificial += 1,
        }
    }
    let cols = n + n_slack + n_artificial;
    let artificial_start = n + n_slack;

    s.columns.resize_with(cols, Vec::new);
    s.columns.truncate(cols);
    for col in &mut s.columns {
        col.clear();
    }
    s.b.clear();
    s.b.resize(m, 0.0);
    s.basis.clear();
    s.basis.resize(m, usize::MAX);
    s.col_owner.clear();
    s.col_owner
        .extend((0..cols).map(|c| ColKind::Structural(c.min(n))));
    s.slack_of_row.clear();
    s.slack_of_row.resize(m, None);
    s.artificial_of_row.clear();
    s.artificial_of_row.resize(m, None);

    let mut slack_cursor = n;
    let mut artificial_cursor = artificial_start;
    for (row, c) in problem.constraints().iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for (var, coeff) in c.expr.terms() {
            if coeff != 0.0 {
                push_coefficient(&mut s.columns[var.index()], row, sign * coeff);
            }
        }
        s.b[row] = sign * c.rhs;
        match effective_op(c.op, flip) {
            ConstraintOp::Le => {
                s.columns[slack_cursor].push((row, 1.0));
                s.col_owner[slack_cursor] = ColKind::Slack(row);
                s.slack_of_row[row] = Some(slack_cursor);
                s.basis[row] = slack_cursor;
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                s.columns[slack_cursor].push((row, -1.0));
                s.col_owner[slack_cursor] = ColKind::Slack(row);
                s.slack_of_row[row] = Some(slack_cursor);
                slack_cursor += 1;
                s.columns[artificial_cursor].push((row, 1.0));
                s.col_owner[artificial_cursor] = ColKind::Artificial(row);
                s.artificial_of_row[row] = Some(artificial_cursor);
                s.basis[row] = artificial_cursor;
                artificial_cursor += 1;
            }
            ConstraintOp::Eq => {
                s.columns[artificial_cursor].push((row, 1.0));
                s.col_owner[artificial_cursor] = ColKind::Artificial(row);
                s.artificial_of_row[row] = Some(artificial_cursor);
                s.basis[row] = artificial_cursor;
                artificial_cursor += 1;
            }
        }
    }

    // Attribution owner maps: resolve every standard-form column to its
    // declared owner slot (slack/artificial columns inherit their row's
    // owner).  Absent or length-stale maps disable attribution cleanly.
    match problem.attribution_owners() {
        Some((var_owner, row_owner)) => {
            s.attrib_row_slot.clear();
            s.attrib_row_slot.extend_from_slice(row_owner);
            s.attrib_col_slot.clear();
            let col_owner = &s.col_owner;
            s.attrib_col_slot
                .extend(col_owner.iter().map(|kind| match *kind {
                    ColKind::Structural(v) => var_owner.get(v).copied().unwrap_or(NO_OWNER),
                    ColKind::Slack(r) | ColKind::Artificial(r) => row_owner[r],
                }));
            s.attrib_slots = var_owner
                .iter()
                .chain(row_owner)
                .filter(|&&o| o != NO_OWNER)
                .map(|&o| o as usize + 1)
                .max()
                .unwrap_or(0);
        }
        None => {
            s.attrib_col_slot.clear();
            s.attrib_row_slot.clear();
            s.attrib_slots = 0;
        }
    }

    // Phase-2 costs in minimize orientation; slack and artificial columns
    // carry zero cost.
    s.cost.clear();
    s.cost.resize(cols, 0.0);
    let flip = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    for (i, &c) in problem.objective().iter().enumerate() {
        s.cost[i] = flip * c;
    }

    StandardForm {
        rows: m,
        cols,
        n_structural: n,
        artificial_start,
    }
}

/// Accumulates duplicate terms on the same row (the dense builder uses `+=`).
fn push_coefficient(column: &mut Vec<(usize, f64)>, row: usize, coeff: f64) {
    if let Some(entry) = column.iter_mut().find(|(r, _)| *r == row) {
        entry.1 += coeff;
    } else {
        column.push((row, coeff));
    }
}

fn effective_op(op: ConstraintOp, flipped: bool) -> ConstraintOp {
    if !flipped {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

/// Sparse LU factorization of the current basis (`s.basis`), plus the
/// `in_basis` membership rebuild.  Returns `false` when the basis is
/// singular (warm start must be abandoned; mid-phase this surfaces as an
/// iteration-limit error so the dense fallback takes over).
fn refactorize_current(s: &mut Scratch, form: &StandardForm) -> bool {
    for &col in &s.basis {
        if col >= form.cols {
            return false;
        }
    }
    // Bill the rebuild to the owner of the most recent pivot (NO_OWNER at
    // solve start, i.e. the shared bucket).  The charge lands *before* the
    // call because `BasisFactor::refactorize` bumps its counter even when it
    // then fails on a singular basis — attribution totals must match the
    // counter deltas exactly.
    let slot = s.attrib_last_slot;
    s.attrib_cell(slot).refactorizations += 1;
    if !s.factor.refactorize(&s.columns, &s.basis) {
        return false;
    }
    s.in_basis.clear();
    s.in_basis.resize(form.cols, false);
    for &col in &s.basis {
        s.in_basis[col] = true;
    }
    true
}

/// `xb = B^{-1} b` via ftran.
fn compute_xb(s: &mut Scratch) {
    let Scratch { factor, b, xb, .. } = s;
    factor.ftran(b, xb);
}

/// `u = B^{-1} a_col` via ftran of the sparse column.
fn ftran_column(s: &mut Scratch, col: usize) {
    let m = s.b.len();
    s.arhs.clear();
    s.arhs.resize(m, 0.0);
    for &(r, v) in &s.columns[col] {
        s.arhs[r] += v;
    }
    let nnz = s.columns[col].len() as u64;
    let slot = s.attrib_col_slot.get(col).copied().unwrap_or(NO_OWNER);
    s.attrib_cell(slot).ftran_nnz += nnz;
    let Scratch {
        factor, arhs, u, ..
    } = s;
    factor.ftran(arhs, u);
}

/// Refactorizes when the eta file outgrew its bound or (every
/// [`DRIFT_CHECK_INTERVAL`] pivots) the basic solution drifted from
/// `B x_B = b`.  Recomputes `x_B` fresh after any rebuild.  Returns `false`
/// on a singular refactorization — pure numerical trouble, handled by the
/// caller as an iteration-limit style bailout.
fn refresh_factor(s: &mut Scratch, form: &StandardForm) -> bool {
    let mut need = s.factor.should_refactorize();
    let mut drift = false;
    if !need && s.pivots_since_drift_check >= DRIFT_CHECK_INTERVAL {
        s.pivots_since_drift_check = 0;
        if drift_exceeded(s, form) {
            need = true;
            drift = true;
        }
    }
    if need {
        if !refactorize_current(s, form) {
            return false;
        }
        compute_xb(s);
        s.pivots_since_drift_check = 0;
        if drift {
            s.drift_refactorizations += 1;
        }
    }
    true
}

/// `‖B x_B − b‖∞ > DRIFT_TOL * (1 + ‖b‖∞)`, computed against the sparse
/// basis columns.
fn drift_exceeded(s: &mut Scratch, form: &StandardForm) -> bool {
    let m = form.rows;
    s.arhs.clear();
    s.arhs.resize(m, 0.0);
    for (i, &col) in s.basis.iter().enumerate() {
        let x = s.xb[i];
        if x != 0.0 {
            for &(r, v) in &s.columns[col] {
                s.arhs[r] += v * x;
            }
        }
    }
    let mut resid = 0.0f64;
    for r in 0..m {
        resid = resid.max((s.arhs[r] - s.b[r]).abs());
    }
    let scale = 1.0 + s.b.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    resid > DRIFT_TOL * scale
}

/// Phase-aware cost of a standard-form column.
#[inline]
fn phase_cost(phase: &Phase, cost: &[f64], artificial_start: usize, col: usize) -> f64 {
    match phase {
        Phase::One => {
            if col >= artificial_start {
                1.0
            } else {
                0.0
            }
        }
        Phase::Two => cost[col],
    }
}

/// Picks the entering column: Bland's first-negative full scan when cycling
/// is suspected, otherwise Dantzig over the partial-pricing candidate list
/// (re-priced against fresh duals each iteration, refilled by a rotating
/// full scan only when it runs dry).  Returns `None` when a complete scan
/// proves no negative reduced cost remains — the phase is optimal.
fn price_entering(
    s: &mut Scratch,
    form: &StandardForm,
    phase: &Phase,
    options: &SimplexOptions,
    use_bland: bool,
) -> Option<usize> {
    let limit = match phase {
        // Never let an artificial column re-enter during phase 2.
        Phase::Two => form.artificial_start,
        Phase::One => form.cols,
    };
    let tol = options.tolerance;
    let y = &s.y;
    let columns = &s.columns;
    let cost = &s.cost;
    let in_basis = &s.in_basis;
    let artificial_start = form.artificial_start;
    let reduced = |j: usize| -> f64 {
        let cj = phase_cost(phase, cost, artificial_start, j);
        let ya: f64 = columns[j].iter().map(|&(r, v)| y[r] * v).sum();
        cj - ya
    };

    if use_bland {
        return (0..limit).find(|&j| !in_basis[j] && reduced(j) < -tol);
    }

    // Re-price the candidate list against the fresh duals.
    let mut best: Option<(usize, f64)> = None;
    let mut candidates = std::mem::take(&mut s.candidates);
    candidates.retain(|&j| {
        if in_basis[j] || j >= limit {
            return false;
        }
        let r = reduced(j);
        if r < -tol {
            if best.is_none_or(|(_, b)| r < b) {
                best = Some((j, r));
            }
            true
        } else {
            false
        }
    });

    if best.is_none() {
        // The list ran dry: rotating full scan.  Optimality is only ever
        // declared here, after a complete wrap found nothing negative.
        candidates.clear();
        let mut cursor = if limit == 0 { 0 } else { s.scan_cursor % limit };
        for _ in 0..limit {
            let j = cursor;
            cursor += 1;
            if cursor == limit {
                cursor = 0;
            }
            if in_basis[j] {
                continue;
            }
            let r = reduced(j);
            if r < -tol {
                candidates.push(j);
                if best.is_none_or(|(_, b)| r < b) {
                    best = Some((j, r));
                }
                if candidates.len() >= PRICING_CANDIDATES {
                    break;
                }
            }
        }
        s.scan_cursor = cursor;
    }
    s.candidates = candidates;
    best.map(|(j, _)| j)
}

/// Runs one phase of the revised simplex to optimality.
fn run_revised_phase(
    s: &mut Scratch,
    form: &StandardForm,
    phase: Phase,
    options: &SimplexOptions,
    iterations: &mut usize,
) -> Result<()> {
    let m = form.rows;
    let mut phase_pivots = 0usize;
    s.candidates.clear();
    s.scan_cursor = 0;
    loop {
        if *iterations >= options.max_iterations {
            return Err(LpError::IterationLimit {
                iterations: *iterations,
            });
        }
        if !refresh_factor(s, form) {
            return Err(LpError::IterationLimit {
                iterations: *iterations,
            });
        }
        let use_bland = phase_pivots >= options.bland_threshold;

        // Duals: y = c_B^T B^{-1} for the phase's cost vector, via btran.
        s.cb.clear();
        for i in 0..m {
            let col = s.basis[i];
            s.cb.push(phase_cost(&phase, &s.cost, form.artificial_start, col));
        }
        {
            let Scratch { factor, cb, y, .. } = s;
            factor.btran(cb, y);
        }

        let Some(entering) = price_entering(s, form, &phase, options, use_bland) else {
            return Ok(()); // optimal for this phase
        };

        // Direction: u = B^{-1} a_j.
        ftran_column(s, entering);

        // Ratio test.
        let mut leaving: Option<(usize, f64)> = None;
        for i in 0..m {
            let ui = s.u[i];
            if ui > options.tolerance {
                let ratio = s.xb[i] / ui;
                let better = match leaving {
                    None => true,
                    Some((li, lratio)) => {
                        if use_bland {
                            ratio < lratio - options.tolerance
                                || ((ratio - lratio).abs() <= options.tolerance
                                    && s.basis[i] < s.basis[li])
                        } else {
                            ratio < lratio - options.tolerance
                                || ((ratio - lratio).abs() <= options.tolerance && ui > s.u[li])
                        }
                    }
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
        }
        let Some((leaving, _)) = leaving else {
            return match phase {
                // The phase-1 objective is bounded below by zero, so a missing
                // leaving row there signals numerical breakdown; surface it as
                // infeasibility exactly like the dense solver does.
                Phase::One => Err(LpError::Infeasible),
                Phase::Two => Err(LpError::Unbounded),
            };
        };

        pivot_update(s, leaving, entering);
        *iterations += 1;
        phase_pivots += 1;
    }
}

/// Dual-simplex repair for a warm-started basis that lost primal feasibility.
///
/// Preconditions: the factor, `xb`, `basis`, `in_basis` describe a factorized
/// basis whose reduced costs are (near-)non-negative — true for a basis that
/// was optimal before a small data perturbation.  Each iteration drives the
/// most negative basic value out of the basis, choosing the entering column
/// by the dual ratio test so reduced costs stay non-negative.  Returns `true`
/// when the basis became primal feasible; `false` when the start was not dual
/// feasible, the pivot budget ran out, or the program appears infeasible —
/// in every failure case the caller cold-solves, so this function never has
/// to render a verdict on its own.
fn run_dual_repair(
    s: &mut Scratch,
    form: &StandardForm,
    options: &SimplexOptions,
    iterations: &mut usize,
) -> bool {
    let m = form.rows;
    // A perturbed-but-recent basis should repair in a few pivots; cap the
    // budget so a pathological basis cannot cost much more than a cold solve.
    let budget = (4 * m + 32).min(options.max_iterations.saturating_sub(*iterations));

    for _ in 0..budget {
        if !refresh_factor(s, form) {
            return false;
        }
        // Leaving row: most negative basic value.
        let mut leaving: Option<(usize, f64)> = None;
        for (i, &v) in s.xb.iter().enumerate() {
            if v < -WARM_FEASIBILITY_TOL && leaving.is_none_or(|(_, best)| v < best) {
                leaving = Some((i, v));
            }
        }
        let Some((row, _)) = leaving else {
            return true; // primal feasible
        };

        // Duals for the phase-2 costs (needed for the dual ratio test).
        s.cb.clear();
        for i in 0..m {
            s.cb.push(s.cost[s.basis[i]]);
        }
        {
            let Scratch { factor, cb, y, .. } = s;
            factor.btran(cb, y);
        }
        // One row of B^{-1} for the pivot-row coefficients alpha_j.
        {
            let Scratch {
                factor, unit, rho, ..
            } = s;
            factor.btran_unit(row, unit, rho);
        }
        let row_slot = s.attrib_row_slot.get(row).copied().unwrap_or(NO_OWNER);
        s.attrib_cell(row_slot).btran_rows += 1;

        // Entering column: minimize d_j / (-alpha_j) over nonbasic real
        // columns with alpha_j < 0, where alpha_j = (B^{-1})_row · a_j.
        // Small negative reduced costs (the perturbation can nudge a
        // previously-optimal basis slightly dual-infeasible) are clamped to
        // zero in the ratio: correctness does not depend on maintaining dual
        // feasibility here, because the subsequent primal phase 2 restores
        // optimality from any primal-feasible basis — the repair only has to
        // terminate, which the pivot budget guarantees.
        //
        // Harris-style two-pass tie-break: after a data perturbation many
        // nonbasic columns sit at reduced cost ≈ 0, so the minimum ratio is
        // hit by a whole cohort of candidates.  Entering whichever shows up
        // first can pivot on a tiny |alpha|, taking an enormous step that
        // *spreads* infeasibility instead of retiring it (observed: a 1e-2
        // violation ballooning to 1e5 before re-converging).  Pass one finds
        // the minimum ratio; pass two admits every candidate within a small
        // slack of it and enters the one with the largest pivot magnitude.
        let mut min_ratio = f64::INFINITY;
        for j in 0..form.artificial_start {
            if s.in_basis[j] {
                continue;
            }
            let mut alpha = 0.0;
            let mut reduced = s.cost[j];
            for &(r, v) in &s.columns[j] {
                alpha += s.rho[r] * v;
                reduced -= s.y[r] * v;
            }
            if alpha < -options.tolerance {
                min_ratio = min_ratio.min(reduced.max(0.0) / -alpha);
            }
        }
        let mut entering: Option<(usize, f64)> = None;
        if min_ratio.is_finite() {
            let slack = min_ratio + options.tolerance * (1.0 + min_ratio);
            for j in 0..form.artificial_start {
                if s.in_basis[j] {
                    continue;
                }
                let mut alpha = 0.0;
                let mut reduced = s.cost[j];
                for &(r, v) in &s.columns[j] {
                    alpha += s.rho[r] * v;
                    reduced -= s.y[r] * v;
                }
                if alpha < -options.tolerance
                    && reduced.max(0.0) / -alpha <= slack
                    && entering.is_none_or(|(_, best)| -alpha > best)
                {
                    entering = Some((j, -alpha));
                }
            }
        }
        let Some((entering, _)) = entering else {
            // No eligible column: the row proves (restricted) infeasibility,
            // but let the cold path confirm it.
            return false;
        };

        // Direction u = B^{-1} a_entering, then the eta-file pivot.
        ftran_column(s, entering);
        if s.u[row].abs() <= options.tolerance {
            return false; // numerically degenerate pivot
        }
        pivot_update(s, row, entering);
        *iterations += 1;
        s.repair_pivots += 1;
    }
    false
}

/// Applies a pivot on `(row, entering)`: updates the basic solution along the
/// direction `s.u`, appends the corresponding eta vector to the factor, and
/// swaps basis membership.  `O(nnz(u))` — no dense inverse is touched.
fn pivot_update(s: &mut Scratch, row: usize, entering: usize) {
    let pivot_value = s.u[row];
    debug_assert!(pivot_value.abs() > 0.0, "pivot on a zero direction element");

    let theta = s.xb[row] / pivot_value;
    // The eta vector `push_eta` appends holds exactly the nonzeros this loop
    // visits plus the pivot position, so counting here attributes eta-file
    // growth without touching the factor.
    let mut eta_nnz = 1u64;
    for (i, xi) in s.xb.iter_mut().enumerate() {
        if i != row {
            let f = s.u[i];
            if f != 0.0 {
                *xi -= f * theta;
                eta_nnz += 1;
            }
        }
    }
    s.xb[row] = theta;
    s.factor.push_eta(row, &s.u);

    s.in_basis[s.basis[row]] = false;
    s.in_basis[entering] = true;
    s.basis[row] = entering;
    s.pivots_since_drift_check += 1;

    let slot = s.attrib_col_slot.get(entering).copied().unwrap_or(NO_OWNER);
    let cell = s.attrib_cell(slot);
    cell.pivots += 1;
    cell.eta_nnz += eta_nnz;
    s.attrib_last_slot = slot;
}

/// After phase 1, pivots artificial variables (at value zero) out of the
/// basis where possible; redundant rows keep their artificial at zero, which
/// is harmless because their direction component stays zero for every real
/// column.
fn drive_out_artificials(s: &mut Scratch, form: &StandardForm, options: &SimplexOptions) {
    let m = form.rows;
    for row in 0..m {
        if s.basis[row] < form.artificial_start {
            continue;
        }
        {
            let Scratch {
                factor, unit, rho, ..
            } = s;
            factor.btran_unit(row, unit, rho);
        }
        let row_slot = s.attrib_row_slot.get(row).copied().unwrap_or(NO_OWNER);
        s.attrib_cell(row_slot).btran_rows += 1;
        let mut replacement = None;
        for j in 0..form.artificial_start {
            if s.in_basis[j] {
                continue;
            }
            let w: f64 = s.columns[j].iter().map(|&(r, v)| s.rho[r] * v).sum();
            if w.abs() > options.tolerance {
                replacement = Some(j);
                break;
            }
        }
        if let Some(j) = replacement {
            ftran_column(s, j);
            if s.u[row].abs() > options.tolerance {
                pivot_update(s, row, j);
            }
        }
    }
}

/// Reads the structural solution out of the basic values and recomputes the
/// objective from the primal point (exactly like the dense solver).
fn extract_solution(
    s: &mut Scratch,
    form: &StandardForm,
    problem: &Problem,
    iterations: usize,
    warm_start: bool,
) -> Solution {
    s.values.clear();
    s.values.resize(form.n_structural, 0.0);
    for (i, &basic_col) in s.basis.iter().enumerate() {
        if basic_col < form.n_structural {
            s.values[basic_col] = s.xb[i];
        }
    }
    // Clamp round-off negatives to zero; legitimate tiny positives survive
    // (variables are non-negative by construction, so any negative here is
    // numerical noise from the basis updates).
    for v in &mut s.values {
        if *v < 0.0 {
            *v = 0.0;
        }
    }

    let mut objective_value: f64 = problem
        .objective()
        .iter()
        .zip(s.values.iter())
        .map(|(c, x)| c * x)
        .sum();
    if objective_value.abs() < 1e-12 {
        objective_value = 0.0;
    }
    let fc = s.factor.counters();
    let stats = SolverStats {
        iterations,
        rows: form.rows,
        columns: form.cols,
        warm_start,
        refactorizations: (fc.refactorizations - s.factor_base.refactorizations) as usize,
        eta_pivots: (fc.eta_pivots - s.factor_base.eta_pivots) as usize,
    };
    Solution::new(s.values.clone(), objective_value, stats)
}

/// Interior-mutable, thread-safe wrapper around a [`SolverContext`].
///
/// Allocation policies take `&self` (the [`AllocationPolicy`]-style traits
/// downstream are object-safe and shared across threads), yet warm-starting
/// needs mutable solver state.  `ContextCell` bridges the two: policies store
/// one cell and call [`ContextCell::solve`] from `&self`, while the cached
/// basis and buffers persist across rounds behind a mutex.
///
/// Cloning produces a *fresh* cell with the same options: solver caches are
/// per-instance working state, not part of a policy's identity.  For the same
/// reason cells compare equal to each other and serialize as `null`.
///
/// [`AllocationPolicy`]: https://docs.rs/oef-core
#[derive(Debug, Default)]
pub struct ContextCell {
    inner: std::sync::Mutex<SolverContext>,
}

impl ContextCell {
    /// Cell with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cell with explicit solver options.
    pub fn with_options(options: SimplexOptions) -> Self {
        Self {
            inner: std::sync::Mutex::new(SolverContext::with_options(options)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SolverContext> {
        // A panic mid-solve leaves only scratch buffers in an odd state; the
        // next solve rebuilds them, so poisoning is safe to ignore.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Solves through the shared context (see [`SolverContext::solve`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`SolverContext::solve`].
    pub fn solve(&self, problem: &Problem) -> Result<Solution> {
        self.lock().solve(problem)
    }

    /// Solves through the shared context with the caller's options, re-syncing
    /// the context's options first (see [`SolverContext::solve_with`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`SolverContext::solve`].
    pub fn solve_with(&self, problem: &Problem, options: &SimplexOptions) -> Result<Solution> {
        self.lock().solve_with(problem, options)
    }

    /// Warm/cold counters of the underlying context.
    pub fn stats(&self) -> ContextStats {
        self.lock().stats()
    }

    /// Whether the most recent solve warm-started.
    pub fn last_was_warm(&self) -> bool {
        self.lock().last_was_warm()
    }

    /// Clone of the most recent solve's per-owner work attribution (see
    /// [`SolverContext::last_attribution`]).
    pub fn last_attribution(&self) -> AttributionReport {
        self.lock().last_attribution().clone()
    }

    /// Drops the cached basis.
    pub fn invalidate(&self) {
        self.lock().invalidate();
    }

    /// Direct mutable access when the cell is uniquely owned.
    pub fn get_mut(&mut self) -> &mut SolverContext {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Clone for ContextCell {
    fn clone(&self) -> Self {
        Self::with_options(self.lock().options().clone())
    }
}

impl PartialEq for ContextCell {
    /// Solver caches are working state, not identity: all cells are equal.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for ContextCell {}

impl serde::Serialize for ContextCell {
    fn serialize(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for ContextCell {
    fn deserialize(_value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense, Variable};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    fn textbook_problem() -> (Problem, Variable, Variable) {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 3.0);
        p.set_objective_coefficient(y, 5.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        (p, x, y)
    }

    #[test]
    fn cold_solve_matches_dense_on_textbook_problem() {
        let (p, x, y) = textbook_problem();
        let mut ctx = SolverContext::new();
        let s = ctx.solve(&p).unwrap();
        assert_close(s.objective_value(), 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
        assert!(!s.stats().warm_start);
        assert_eq!(ctx.stats().cold_solves, 1);
    }

    #[test]
    fn warm_solve_on_identical_problem_takes_zero_pivots() {
        let (p, _, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        let cold = ctx.solve(&p).unwrap();
        let warm = ctx.solve(&p).unwrap();
        assert!(warm.stats().warm_start);
        assert_eq!(
            warm.stats().iterations,
            0,
            "optimal basis should be reused as-is"
        );
        assert_close(warm.objective_value(), cold.objective_value());
        assert!(ctx.last_was_warm());
        assert_eq!(ctx.stats().warm_solves, 1);
    }

    #[test]
    fn warm_solve_tracks_objective_perturbation() {
        let (mut p, x, y) = textbook_problem();
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();
        p.update_objective_coefficient(x, 4.0);
        let warm = ctx.solve(&p).unwrap();
        assert!(warm.stats().warm_start);
        let dense = p.solve().unwrap();
        assert_close(warm.objective_value(), dense.objective_value());
        assert_close(warm.value(x), dense.value(x));
        assert_close(warm.value(y), dense.value(y));
    }

    #[test]
    fn warm_solve_tracks_rhs_update() {
        let (mut p, _, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();
        p.update_rhs(2, 20.0);
        let warm = ctx.solve(&p).unwrap();
        let dense = p.solve().unwrap();
        assert_close(warm.objective_value(), dense.objective_value());
    }

    #[test]
    fn ge_and_eq_constraints_cold_solve() {
        // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 0.12);
        p.set_objective_coefficient(y, 0.15);
        p.add_constraint(&[(x, 60.0), (y, 60.0)], ConstraintOp::Ge, 300.0);
        p.add_constraint(&[(x, 12.0), (y, 6.0)], ConstraintOp::Ge, 36.0);
        p.add_constraint(&[(x, 10.0), (y, 30.0)], ConstraintOp::Ge, 90.0);
        let mut ctx = SolverContext::new();
        let s = ctx.solve(&p).unwrap();
        assert_close(s.objective_value(), 0.66);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
        // Warm re-solve with a perturbed RHS still agrees with dense.
        p.update_rhs(0, 320.0);
        let warm = ctx.solve(&p).unwrap();
        let dense = p.solve().unwrap();
        assert_close(warm.objective_value(), dense.objective_value());
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut infeasible = Problem::new(Sense::Maximize);
        let x = infeasible.add_variable("x");
        infeasible.set_objective_coefficient(x, 1.0);
        infeasible.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 5.0);
        infeasible.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        assert_eq!(
            SolverContext::new().solve(&infeasible).unwrap_err(),
            LpError::Infeasible
        );

        let mut unbounded = Problem::new(Sense::Maximize);
        let x = unbounded.add_variable("x");
        let y = unbounded.add_variable("y");
        unbounded.set_objective_coefficient(x, 1.0);
        unbounded.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(
            SolverContext::new().solve(&unbounded).unwrap_err(),
            LpError::Unbounded
        );
    }

    #[test]
    fn shape_change_falls_back_to_cold() {
        let (p, _, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();

        // Different shape: one extra constraint, from an unrelated problem
        // instance (no churn journal bridges the two).
        let (mut p2, x, y) = textbook_problem();
        p2.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 7.0);
        let s = ctx.solve(&p2).unwrap();
        assert!(!s.stats().warm_start, "shape change must cold-solve");
        assert_eq!(ctx.stats().cold_solves, 2);
        let dense = p2.solve().unwrap();
        assert_close(s.objective_value(), dense.objective_value());
    }

    #[test]
    fn rhs_sign_flip_changes_shape_and_still_matches_dense() {
        // Flipping the sign of a RHS changes the effective operator, so the
        // standard-form layout (and the signature) change.  The lineage
        // machinery may still serve this as a remapped warm repair (the row
        // count is unchanged), but whichever path runs must agree with dense.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 2.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 5.0);
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();

        p.update_rhs(0, -2.0); // x - y <= -2 becomes a >= row after normalisation
        let s = ctx.solve(&p).unwrap();
        let dense = p.solve().unwrap();
        assert_close(s.objective_value(), dense.objective_value());
        assert_close(s.value(x), dense.value(x));
        assert_close(s.value(y), dense.value(y));
    }

    #[test]
    fn infeasible_after_update_is_reported_not_cached() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective_coefficient(x, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        let mut ctx = SolverContext::new();
        assert!(ctx.solve(&p).is_ok());

        // Same shape, but now x >= 5 and x <= 3: infeasible.
        p.update_rhs(0, 5.0);
        assert_eq!(ctx.solve(&p).unwrap_err(), LpError::Infeasible);
        // The context recovers on the next solvable update.
        p.update_rhs(0, 2.0);
        let s = ctx.solve(&p).unwrap();
        assert_close(s.objective_value(), 3.0);
    }

    #[test]
    fn degenerate_problem_terminates_with_bland_fallback() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(x, 2.0), (y, 1.0)], ConstraintOp::Le, 2.0);
        // Force Bland's rule from the first pivot: termination is then
        // guaranteed even on this degenerate vertex.
        let options = SimplexOptions {
            bland_threshold: 0,
            ..SimplexOptions::default()
        };
        let mut ctx = SolverContext::with_options(options);
        let s = ctx.solve(&p).unwrap();
        assert_close(s.objective_value(), 1.0);
        // Warm re-solve of the same degenerate program also terminates.
        let warm = ctx.solve(&p).unwrap();
        assert!(warm.stats().warm_start);
        assert_close(warm.objective_value(), 1.0);
    }

    #[test]
    fn tiny_pivot_budget_falls_back_to_dense_reference() {
        let (p, _, _) = textbook_problem();
        // One pivot is not enough for the revised path, so the context must
        // silently defer to the dense solver... which also fails with the
        // same budget — the error is reported faithfully.
        let options = SimplexOptions {
            max_iterations: 0,
            ..SimplexOptions::default()
        };
        let mut ctx = SolverContext::with_options(options);
        assert!(matches!(ctx.solve(&p), Err(LpError::IterationLimit { .. })));
        assert_eq!(ctx.stats().dense_fallbacks, 1);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 2.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 4.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], ConstraintOp::Eq, 8.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        let mut ctx = SolverContext::new();
        let s = ctx.solve(&p).unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 1.0);
        let warm = ctx.solve(&p).unwrap();
        assert_close(warm.objective_value(), 7.0);
    }

    #[test]
    fn equal_throughput_structure_matches_dense() {
        // The miniature non-cooperative OEF program from the dense solver's
        // test-suite: warm-started round sequence must match dense exactly.
        let build = |w22: f64| {
            let mut p = Problem::new(Sense::Maximize);
            let x11 = p.add_variable("x11");
            let x12 = p.add_variable("x12");
            let x21 = p.add_variable("x21");
            let x22 = p.add_variable("x22");
            for (v, c) in [(x11, 1.0), (x12, 2.0), (x21, 1.0), (x22, w22)] {
                p.set_objective_coefficient(v, c);
            }
            p.add_constraint(&[(x11, 1.0), (x21, 1.0)], ConstraintOp::Le, 1.0);
            p.add_constraint(&[(x12, 1.0), (x22, 1.0)], ConstraintOp::Le, 1.0);
            p.add_constraint(
                &[(x11, 1.0), (x12, 2.0), (x21, -1.0), (x22, -w22)],
                ConstraintOp::Eq,
                0.0,
            );
            p
        };
        let mut ctx = SolverContext::new();
        for (round, w22) in [5.0, 5.1, 4.9, 5.05, 5.0].into_iter().enumerate() {
            let p = build(w22);
            let s = ctx.solve(&p).unwrap();
            let dense = p.solve().unwrap();
            assert!(
                (s.objective_value() - dense.objective_value()).abs() < 1e-6,
                "round {round}: revised {} vs dense {}",
                s.objective_value(),
                dense.objective_value()
            );
            if round > 0 {
                assert!(s.stats().warm_start, "round {round} should warm-start");
            }
        }
    }

    #[test]
    fn eta_file_growth_triggers_refactorization_mid_solve() {
        // A problem big enough to need many pivots, with the eta bound forced
        // low: the solve must transparently refactorize and still agree with
        // the dense oracle.
        let n = 24;
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| p.add_variable(format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coefficient(v, 1.0 + (i as f64 * 0.37).sin().abs());
        }
        for i in 0..n {
            let terms = [
                (vars[i], 1.0),
                (vars[(i + 1) % n], 0.5),
                (vars[(i + 3) % n], 0.25),
            ];
            p.add_constraint(&terms, ConstraintOp::Le, 1.0 + (i % 3) as f64);
        }
        let mut ctx = SolverContext::new();
        ctx.scratch.factor.max_etas = 2;
        let s = ctx.solve(&p).unwrap();
        let dense = p.solve().unwrap();
        assert_close(s.objective_value(), dense.objective_value());
        assert!(
            s.stats().refactorizations >= 2,
            "forcing max_etas=2 over {} pivots must refactorize repeatedly, saw {}",
            s.stats().iterations,
            s.stats().refactorizations
        );
        assert!(s.stats().eta_pivots >= s.stats().iterations);
        assert!(ctx.stats().refactorizations >= 2);
    }

    #[test]
    fn singular_cached_basis_repairs_via_cold_path() {
        // Degenerate data update that makes the cached basis singular: two
        // structurally identical rows collapse the basis columns.  The warm
        // attempt must reject the factorization and the cold path recovers.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 2.0);
        p.add_constraint(&[(x, 2.0), (y, 1.0)], ConstraintOp::Le, 3.0);
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();
        // Make row 1 a copy of row 0: any basis using both rows' structural
        // columns is singular.
        p.update_constraint_coefficient(0, x, 1.0);
        p.update_constraint_coefficient(0, y, 1.0);
        p.update_constraint_coefficient(1, x, 1.0);
        p.update_constraint_coefficient(1, y, 1.0);
        p.update_rhs(1, 2.0);
        let s = ctx.solve(&p).unwrap();
        let dense = p.solve().unwrap();
        assert_close(s.objective_value(), dense.objective_value());
    }

    #[test]
    fn attribution_totals_match_counter_deltas_exactly() {
        let (mut p, _, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        let mut acc = AttributionReport::default();
        let mut last = ctx.stats();
        for round in 0..4 {
            if round > 0 {
                p.update_rhs(2, 18.0 + 2.0 * round as f64);
            }
            // Two variable owners, no row owners (rows are shared capacity).
            p.set_attribution_owners(vec![0, 1], vec![NO_OWNER; 3]);
            ctx.solve(&p).unwrap();
            let report = ctx.last_attribution().clone();
            assert_eq!(report.slots.len(), 2, "two owner slots declared");
            let now = ctx.stats();
            assert_eq!(
                report.total().pivots,
                now.eta_pivots - last.eta_pivots,
                "round {round}: every eta append must be one attributed pivot"
            );
            assert_eq!(
                report.total().refactorizations,
                now.refactorizations - last.refactorizations,
                "round {round}: every refactorization must be attributed"
            );
            last = now;
            acc.merge(&report);
        }
        assert!(acc.total().pivots >= 1);
        assert!(
            acc.slots.iter().any(|w| !w.is_zero()),
            "structural pivots must land on variable owners, not only the shared bucket"
        );
    }

    #[test]
    fn attribution_disabled_without_owner_maps() {
        let (p, _, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();
        let report = ctx.last_attribution();
        assert!(!report.attributed());
        let stats = ctx.stats();
        assert_eq!(report.unattributed.pivots, stats.eta_pivots);
        assert_eq!(report.unattributed.refactorizations, stats.refactorizations);
    }

    #[test]
    fn context_stats_expose_factor_counters() {
        let (mut p, x, _) = textbook_problem();
        let mut ctx = SolverContext::new();
        ctx.solve(&p).unwrap();
        let stats = ctx.stats();
        assert!(stats.refactorizations >= 1, "cold solve factorizes once");
        assert!(stats.eta_pivots >= 1, "textbook problem needs pivots");
        // A perturbation that moves the optimal vertex forces repair pivots.
        p.update_objective_coefficient(x, 30.0);
        p.update_rhs(2, 6.0);
        let warm = ctx.solve(&p).unwrap();
        assert!(warm.stats().warm_start);
        let dense = p.solve().unwrap();
        assert_close(warm.objective_value(), dense.objective_value());
    }
}
