//! Solution type returned by the solver.

use crate::problem::Variable;
use crate::simplex::SolverStats;
use serde::{Deserialize, Serialize};

/// An optimal (or feasible, for a zero objective) solution to a [`crate::Problem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    values: Vec<f64>,
    objective_value: f64,
    stats: SolverStats,
}

impl Solution {
    pub(crate) fn new(values: Vec<f64>, objective_value: f64, stats: SolverStats) -> Self {
        Self {
            values,
            objective_value,
            stats,
        }
    }

    /// Value of a decision variable at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `variable` does not belong to the problem that produced this solution.
    pub fn value(&self, variable: Variable) -> f64 {
        self.values[variable.index()]
    }

    /// All variable values, indexed by [`Variable::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value at the optimum (in the original optimisation sense).
    pub fn objective_value(&self) -> f64 {
        self.objective_value
    }

    /// Solver statistics for this solve.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense};

    #[test]
    fn values_accessor_matches_value() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 2.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 3.0);
        let s = p.solve().unwrap();
        assert_eq!(s.values().len(), 2);
        assert_eq!(s.values()[0], s.value(x));
        assert_eq!(s.values()[1], s.value(y));
    }

    #[test]
    fn solution_serde_round_trip() {
        let sol = Solution::new(vec![1.0, 2.0], 3.0, SolverStats::default());
        let json = serde_json::to_string(&sol).unwrap();
        let back: Solution = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sol);
    }
}
