//! Per-owner solver-work attribution.
//!
//! The revised simplex charges every unit of work it performs — pivots,
//! eta-file growth, refactorizations, ftran/btran sweeps — to the *owner
//! slot* of the column or row involved, as declared by
//! [`crate::Problem::set_attribution_owners`].  The OEF policies lay tenants
//! out in arithmetic blocks, so "which tenant's rows made this solve slow"
//! reduces to an array index per pivot: accounting is a slot lookup plus a
//! few integer adds on paths that already sweep the same data, with no
//! allocation per pivot (the slot array is sized once per solve).
//!
//! The invariant the tests pin down: summing [`TenantWork::pivots`] (and
//! `refactorizations`) across all slots plus the unattributed bucket equals
//! the solver's own [`crate::ContextStats`] deltas for the same solves,
//! *exactly* — every `push_eta` flows through one attributed pivot, so no
//! work can leak out of (or be double-counted into) the report.

/// Work the solver performed on behalf of one attribution owner.
///
/// All quantities are exact integer counts of events on the solve path; the
/// scalar [`TenantWork::work_units`] collapses them into one comparable cost
/// figure for ranking and Prometheus export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantWork {
    /// Simplex pivots whose entering column belongs to this owner (each is
    /// one eta-file append).
    pub pivots: u64,
    /// Nonzeros those pivots appended to the eta file — the actual memory
    /// and per-ftran/btran cost the owner's pivots induce.
    pub eta_nnz: u64,
    /// Basis refactorizations triggered while this owner's pivot was the
    /// most recent one (eta-file growth is what trips the rebuild).
    pub refactorizations: u64,
    /// Nonzeros of this owner's columns fed through ftran (direction solves).
    pub ftran_nnz: u64,
    /// `B⁻¹`-row extractions (btran of a unit vector) for this owner's rows
    /// during dual repair and artificial drive-out.
    pub btran_rows: u64,
}

impl TenantWork {
    /// Whether no work at all was recorded.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &TenantWork) {
        self.pivots += other.pivots;
        self.eta_nnz += other.eta_nnz;
        self.refactorizations += other.refactorizations;
        self.ftran_nnz += other.ftran_nnz;
        self.btran_rows += other.btran_rows;
    }

    /// Scalar cost in abstract work units, for ranking owners against each
    /// other: nonzero traffic at weight 1, plus fixed per-event charges for
    /// pivots and (much heavier) refactorizations.
    pub fn work_units(&self) -> u64 {
        self.eta_nnz
            + self.ftran_nnz
            + self.btran_rows
            + 8 * self.pivots
            + 256 * self.refactorizations
    }
}

/// Per-solve attribution: one [`TenantWork`] per owner slot, plus the
/// unattributed bucket (shared rows, pre-pivot factorizations, out-of-range
/// slots).  `slots` is empty when the solved problem carried no owner maps —
/// all work then lands in `unattributed`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionReport {
    /// Work per owner slot, indexed by the slot ids the caller declared.
    pub slots: Vec<TenantWork>,
    /// Work on shared entities no single owner is responsible for.
    pub unattributed: TenantWork,
}

impl AttributionReport {
    /// Whether owner maps were in effect for the solve.
    pub fn attributed(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Sum of every slot plus the unattributed bucket.
    pub fn total(&self) -> TenantWork {
        let mut total = self.unattributed;
        for slot in &self.slots {
            total.merge(slot);
        }
        total
    }

    /// Merges another report into this one slot-by-slot, growing the slot
    /// array as needed (aggregation across solves or shards).
    pub fn merge(&mut self, other: &AttributionReport) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), TenantWork::default());
        }
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            mine.merge(theirs);
        }
        self.unattributed.merge(&other.unattributed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_totals_line_up() {
        let mut a = AttributionReport {
            slots: vec![
                TenantWork {
                    pivots: 2,
                    eta_nnz: 10,
                    ..Default::default()
                },
                TenantWork::default(),
            ],
            unattributed: TenantWork {
                refactorizations: 1,
                ..Default::default()
            },
        };
        let b = AttributionReport {
            slots: vec![
                TenantWork {
                    pivots: 1,
                    ..Default::default()
                },
                TenantWork {
                    btran_rows: 4,
                    ..Default::default()
                },
                TenantWork {
                    ftran_nnz: 7,
                    ..Default::default()
                },
            ],
            unattributed: TenantWork::default(),
        };
        a.merge(&b);
        assert_eq!(a.slots.len(), 3, "merge grows to the wider report");
        assert_eq!(a.slots[0].pivots, 3);
        assert_eq!(a.slots[1].btran_rows, 4);
        assert_eq!(a.slots[2].ftran_nnz, 7);
        let total = a.total();
        assert_eq!(total.pivots, 3);
        assert_eq!(total.refactorizations, 1);
        assert_eq!(total.eta_nnz, 10);
        assert!(a.attributed());
        assert!(!AttributionReport::default().attributed());
        assert!(TenantWork::default().is_zero());
        assert!(total.work_units() > 0);
    }
}
