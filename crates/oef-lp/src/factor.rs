//! Sparse LU factorization of a simplex basis with eta-file updates.
//!
//! The revised simplex needs `B⁻¹` only through its action on vectors:
//! `ftran` (solve `B u = a`, pricing directions and `x_B = B⁻¹ b`) and
//! `btran` (solve `Bᵀ y = c_B`, duals and single rows of `B⁻¹`).  Instead of
//! maintaining a dense `m × m` inverse — quadratic memory, `O(m²)` per pivot
//! and `O(m³)` per refactorization — this module keeps:
//!
//! * a **sparse LU factorization** of the basis matrix, computed left-looking
//!   (Gilbert–Peierls): each basis column is solved against the
//!   already-computed `L` with a heap-ordered sparse triangular solve, then a
//!   partial pivot is chosen by magnitude.  Columns are processed
//!   fewest-nonzeros-first, which keeps the (near-triangular, slack-heavy)
//!   bases produced by the OEF programs almost fill-free;
//! * an **eta file** (product form of the inverse): a simplex pivot replaces
//!   one basis column, so `B_new = B_old · E` where `E` is the identity with
//!   one column swapped for the pivot direction `u = B⁻¹ a_q`.  A pivot
//!   appends one sparse eta vector — `O(nnz(u))` — and both solves apply the
//!   eta stack after/before the triangular solves.
//!
//! The factorization is rebuilt ("refactorized") only when the eta file grows
//! past a bound ([`BasisFactor::should_refactorize`]) or the caller detects
//! numerical drift; see `revised.rs` for the drift residual test.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Row/position index sentinel for "not assigned yet".
const UNASSIGNED: u32 = u32::MAX;

/// Absolute pivot magnitude below which a basis column is declared
/// (numerically) singular and the factorization is abandoned.
const SINGULAR_TOL: f64 = 1e-11;

/// `L` entries smaller than this are dropped: they cannot influence solves
/// above round-off but would bloat the factor.
const DROP_TOL: f64 = 1e-300;

/// One product-form update: the basis column at position `pos` was replaced
/// by a column whose direction `u = B⁻¹ a_q` had pivot element `pivot` and
/// off-pivot nonzeros `entries`.
#[derive(Debug, Clone)]
struct Eta {
    pos: u32,
    pivot: f64,
    /// Off-pivot nonzeros of `u`, in basis-position space.
    entries: Vec<(u32, f64)>,
}

/// Monotone counters describing how much factorization work a
/// [`BasisFactor`] has done over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FactorCounters {
    /// Sparse LU (re)factorizations performed.
    pub refactorizations: u64,
    /// Pivots applied as eta-file appends.
    pub eta_pivots: u64,
}

/// Sparse LU factors plus the eta file, with reusable workspace.
#[derive(Debug, Default)]
pub(crate) struct BasisFactor {
    m: usize,
    /// Per LU position: below-diagonal `L` entries `(original row, multiplier)`.
    lcols: Vec<Vec<(u32, f64)>>,
    /// Per LU position `k`: above-diagonal `U[t, k]` entries with `t < k`.
    ucols: Vec<Vec<(u32, f64)>>,
    /// `U` diagonal per position.
    udiag: Vec<f64>,
    /// Position → original constraint row chosen as pivot.
    pivot_row_of_pos: Vec<u32>,
    /// Original constraint row → position (inverse permutation).
    pos_of_row: Vec<u32>,
    /// Position → basis position (which column of `B` the position factors).
    col_of_pos: Vec<u32>,
    /// Product-form updates since the last refactorization, oldest first.
    etas: Vec<Eta>,
    /// Total nonzeros across the eta file (refactorization heuristic).
    eta_nnz: usize,
    /// Nonzeros in `L` + `U` after the last refactorization.
    lu_nnz: usize,
    /// Eta-count bound that triggers refactorization.
    pub(crate) max_etas: usize,
    // --- reusable workspace ---
    work: Vec<f64>,
    zpos: Vec<f64>,
    cwork: Vec<f64>,
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<u32>>,
    stamp: Vec<u32>,
    stamp_epoch: u32,
    colorder: Vec<u32>,
    counters: FactorCounters,
}

/// Default bound on the eta-file length before a refactorization is forced.
pub(crate) const DEFAULT_MAX_ETAS: usize = 64;

impl BasisFactor {
    /// Lifetime counters (monotone; never reset).
    pub(crate) fn counters(&self) -> FactorCounters {
        self.counters
    }

    /// Number of eta vectors accumulated since the last refactorization.
    #[cfg(test)]
    pub(crate) fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Whether the eta file has grown past its bound — the caller should
    /// refactorize before the next solve with this factor.  The bound is both
    /// a count (`max_etas`) and a mass test: once the eta nonzeros outweigh
    /// the LU factors themselves, applying the stack costs more than
    /// refactorizing away.
    pub(crate) fn should_refactorize(&self) -> bool {
        let max_etas = if self.max_etas == 0 {
            DEFAULT_MAX_ETAS
        } else {
            self.max_etas
        };
        self.etas.len() >= max_etas || self.eta_nnz > 2 * (self.lu_nnz + self.m)
    }

    /// Sparse LU factorization of the basis described by `basis` over the
    /// standard-form `columns` (sparse by column).  Returns `false` when the
    /// basis is structurally or numerically singular; the factor is then
    /// unusable and the caller must fall back.
    pub(crate) fn refactorize(&mut self, columns: &[Vec<(usize, f64)>], basis: &[usize]) -> bool {
        let m = basis.len();
        self.m = m;
        self.etas.clear();
        self.eta_nnz = 0;
        self.lcols.resize_with(m, Vec::new);
        self.ucols.resize_with(m, Vec::new);
        self.udiag.resize(m, 0.0);
        self.pivot_row_of_pos.clear();
        self.pivot_row_of_pos.resize(m, UNASSIGNED);
        self.pos_of_row.clear();
        self.pos_of_row.resize(m, UNASSIGNED);
        self.col_of_pos.clear();
        self.col_of_pos.resize(m, 0);
        self.work.clear();
        self.work.resize(m, 0.0);
        self.stamp.clear();
        self.stamp.resize(m, 0);
        self.stamp_epoch = 0;
        self.heap.clear();
        self.counters.refactorizations += 1;

        for &col in basis {
            if col >= columns.len() {
                return false;
            }
        }

        // Fewest-nonzeros-first column order: slack/artificial singletons
        // factor first without fill, an approximate Markowitz ordering that
        // keeps the bump (the genuinely coupled structural columns) small.
        self.colorder.clear();
        self.colorder.extend(0..m as u32);
        self.colorder
            .sort_by_key(|&j| columns[basis[j as usize]].len());

        self.lu_nnz = 0;
        for k in 0..m {
            let bcol = self.colorder[k];
            self.col_of_pos[k] = bcol;
            if !self.factor_column(columns, basis[bcol as usize], k) {
                // Leave the factor marked unusable for good measure.
                self.pivot_row_of_pos[k] = UNASSIGNED;
                return false;
            }
            self.lu_nnz += self.lcols[k].len() + self.ucols[k].len() + 1;
        }
        true
    }

    /// Factors one basis column into LU position `k`: sparse lower-triangular
    /// solve against the first `k` positions, then partial pivoting by
    /// magnitude among still-unassigned rows.
    fn factor_column(&mut self, columns: &[Vec<(usize, f64)>], col: usize, k: usize) -> bool {
        self.touched.clear();
        self.heap.clear();
        self.stamp_epoch = self.stamp_epoch.wrapping_add(1);
        if self.stamp_epoch == 0 {
            // Wrapped: clear stale marks so no position looks freshly stamped.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp_epoch = 1;
        }
        let epoch = self.stamp_epoch;

        for &(row, val) in &columns[col] {
            if val == 0.0 {
                continue;
            }
            if self.work[row] == 0.0 {
                self.touched.push(row as u32);
            }
            self.work[row] += val;
            let pos = self.pos_of_row[row];
            if pos != UNASSIGNED && self.stamp[pos as usize] != epoch {
                self.heap.push(Reverse(pos));
            }
        }

        // Topological application of earlier L columns: positions come off
        // the heap in increasing order, and fill can only push positions
        // larger than the one being applied (an L column's rows were
        // unassigned when it was built, so they pivot later).
        let ucol = &mut self.ucols[k];
        ucol.clear();
        while let Some(Reverse(t)) = self.heap.pop() {
            let t = t as usize;
            if self.stamp[t] == epoch {
                continue;
            }
            self.stamp[t] = epoch;
            let pr = self.pivot_row_of_pos[t] as usize;
            let xt = self.work[pr];
            if xt == 0.0 {
                continue;
            }
            ucol.push((t as u32, xt));
            for ei in 0..self.lcols[t].len() {
                let (r, lval) = self.lcols[t][ei];
                let r = r as usize;
                if self.work[r] == 0.0 {
                    self.touched.push(r as u32);
                }
                self.work[r] -= lval * xt;
                let pos = self.pos_of_row[r];
                if pos != UNASSIGNED && self.stamp[pos as usize] != epoch {
                    self.heap.push(Reverse(pos));
                }
            }
        }

        // Partial pivoting: largest magnitude among unassigned rows.
        let mut pivot_row = UNASSIGNED;
        let mut pivot_abs = 0.0f64;
        for &r in &self.touched {
            if self.pos_of_row[r as usize] == UNASSIGNED {
                let a = self.work[r as usize].abs();
                if a > pivot_abs {
                    pivot_abs = a;
                    pivot_row = r;
                }
            }
        }
        if pivot_abs < SINGULAR_TOL {
            for &r in &self.touched {
                self.work[r as usize] = 0.0;
            }
            return false;
        }

        let pr = pivot_row as usize;
        let pivot = self.work[pr];
        self.udiag[k] = pivot;
        self.pivot_row_of_pos[k] = pivot_row;
        self.pos_of_row[pr] = k as u32;
        let lcol = &mut self.lcols[k];
        lcol.clear();
        for &r in &self.touched {
            let r = r as usize;
            let v = self.work[r];
            self.work[r] = 0.0;
            if r != pr && self.pos_of_row[r] == UNASSIGNED && v.abs() > DROP_TOL {
                lcol.push((r as u32, v / pivot));
            }
        }
        true
    }

    /// FTRAN: solves `B u = rhs` (`rhs` indexed by constraint row) and writes
    /// `u` into `out`, indexed by **basis position** (parallel to the basis
    /// array / `x_B`).
    pub(crate) fn ftran(&mut self, rhs: &[f64], out: &mut Vec<f64>) {
        let m = self.m;
        debug_assert_eq!(rhs.len(), m);
        self.work.clear();
        self.work.extend_from_slice(rhs);

        // L solve, ascending positions (unit diagonal).
        for t in 0..m {
            let v = self.work[self.pivot_row_of_pos[t] as usize];
            if v != 0.0 {
                for &(r, lval) in &self.lcols[t] {
                    self.work[r as usize] -= lval * v;
                }
            }
        }
        // U solve, descending positions (right-looking column form).
        self.zpos.clear();
        self.zpos.resize(m, 0.0);
        for k in (0..m).rev() {
            let v = self.work[self.pivot_row_of_pos[k] as usize];
            if v == 0.0 {
                continue;
            }
            let z = v / self.udiag[k];
            self.zpos[k] = z;
            for &(t, uval) in &self.ucols[k] {
                self.work[self.pivot_row_of_pos[t as usize] as usize] -= uval * z;
            }
        }
        // Undo the column permutation into basis-position space.
        out.clear();
        out.resize(m, 0.0);
        for k in 0..m {
            out[self.col_of_pos[k] as usize] = self.zpos[k];
        }
        // Product-form updates, oldest first.
        for eta in &self.etas {
            let pos = eta.pos as usize;
            let vr = out[pos] / eta.pivot;
            out[pos] = vr;
            if vr != 0.0 {
                for &(i, ui) in &eta.entries {
                    out[i as usize] -= ui * vr;
                }
            }
        }
    }

    /// BTRAN: solves `Bᵀ y = c` (`c` indexed by basis position) and writes
    /// `y` into `out`, indexed by **constraint row**.
    pub(crate) fn btran(&mut self, c: &[f64], out: &mut Vec<f64>) {
        let m = self.m;
        debug_assert_eq!(c.len(), m);
        self.cwork.clear();
        self.cwork.extend_from_slice(c);
        // Transposed product-form updates, newest first.
        for eta in self.etas.iter().rev() {
            let pos = eta.pos as usize;
            let mut acc = self.cwork[pos];
            for &(i, ui) in &eta.entries {
                acc -= ui * self.cwork[i as usize];
            }
            self.cwork[pos] = acc / eta.pivot;
        }
        // Column permutation into LU position space.
        self.zpos.clear();
        self.zpos.resize(m, 0.0);
        for k in 0..m {
            self.zpos[k] = self.cwork[self.col_of_pos[k] as usize];
        }
        // Uᵀ solve, ascending positions.
        for k in 0..m {
            let mut acc = self.zpos[k];
            for &(t, uval) in &self.ucols[k] {
                acc -= uval * self.zpos[t as usize];
            }
            self.zpos[k] = acc / self.udiag[k];
        }
        // Lᵀ solve, descending positions, straight into row space.
        out.clear();
        out.resize(m, 0.0);
        for k in 0..m {
            out[self.pivot_row_of_pos[k] as usize] = self.zpos[k];
        }
        for t in (0..m).rev() {
            if self.lcols[t].is_empty() {
                continue;
            }
            let pr = self.pivot_row_of_pos[t] as usize;
            let mut acc = out[pr];
            for &(r, lval) in &self.lcols[t] {
                acc -= lval * out[r as usize];
            }
            out[pr] = acc;
        }
    }

    /// BTRAN of the unit vector for basis position `pos`: the corresponding
    /// row of `B⁻¹`, used by the dual ratio test and artificial drive-out.
    pub(crate) fn btran_unit(&mut self, pos: usize, unit: &mut Vec<f64>, out: &mut Vec<f64>) {
        unit.clear();
        unit.resize(self.m, 0.0);
        unit[pos] = 1.0;
        // Move `unit` out to appease the borrow checker (btran reads it while
        // writing `out`), then put the buffer back for reuse.
        let u = std::mem::take(unit);
        self.btran(&u, out);
        *unit = u;
    }

    /// Records a pivot at basis position `pos` with direction `u = B⁻¹ a_q`
    /// (basis-position space) as an eta-file append.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the pivot element is nonzero; callers ratio-test
    /// against a tolerance before pivoting.
    pub(crate) fn push_eta(&mut self, pos: usize, u: &[f64]) {
        debug_assert!(u[pos] != 0.0, "eta pivot must be nonzero");
        let mut entries = Vec::with_capacity(8);
        for (i, &v) in u.iter().enumerate() {
            if i != pos && v != 0.0 {
                entries.push((i as u32, v));
            }
        }
        self.eta_nnz += entries.len() + 1;
        self.etas.push(Eta {
            pos: pos as u32,
            pivot: u[pos],
            entries,
        });
        self.counters.eta_pivots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference solve of `M z = rhs` via Gaussian elimination.
    fn dense_solve(m: usize, mat: &[f64], rhs: &[f64]) -> Vec<f64> {
        let mut a = mat.to_vec();
        let mut b = rhs.to_vec();
        for p in 0..m {
            let mut best = p;
            for r in p + 1..m {
                if a[r * m + p].abs() > a[best * m + p].abs() {
                    best = r;
                }
            }
            assert!(a[best * m + p].abs() > 1e-12, "singular test matrix");
            if best != p {
                for c in 0..m {
                    a.swap(p * m + c, best * m + c);
                }
                b.swap(p, best);
            }
            let inv = 1.0 / a[p * m + p];
            for r in 0..m {
                if r != p {
                    let f = a[r * m + p] * inv;
                    if f != 0.0 {
                        for c in p..m {
                            a[r * m + c] -= f * a[p * m + c];
                        }
                        b[r] -= f * b[p];
                    }
                }
            }
        }
        (0..m).map(|i| b[i] / a[i * m + i]).collect()
    }

    /// Builds sparse columns + dense matrix for a deterministic test basis.
    fn test_basis(m: usize, seed: u64) -> (Vec<Vec<(usize, f64)>>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut cols = vec![Vec::new(); m];
        let mut dense = vec![0.0; m * m];
        for (j, col) in cols.iter_mut().enumerate() {
            // Strong diagonal plus a couple of off-diagonal entries.
            let d = 1.0 + next();
            col.push((j, d));
            dense[j * m + j] = d;
            for _ in 0..2 {
                let r = (next() * m as f64) as usize % m;
                if r != j && !col.iter().any(|&(rr, _)| rr == r) {
                    let v = next() - 0.5;
                    if v.abs() > 1e-3 {
                        col.push((r, v));
                        dense[r * m + j] = v;
                    }
                }
            }
        }
        (cols, dense)
    }

    #[test]
    fn ftran_matches_dense_solve() {
        for seed in 1..6u64 {
            let m = 17;
            let (cols, dense) = test_basis(m, seed);
            let basis: Vec<usize> = (0..m).collect();
            let mut f = BasisFactor::default();
            assert!(f.refactorize(&cols, &basis));
            let rhs: Vec<f64> = (0..m)
                .map(|i| (i as f64 * 0.37 + seed as f64).sin())
                .collect();
            let mut out = Vec::new();
            f.ftran(&rhs, &mut out);
            let want = dense_solve(m, &dense, &rhs);
            for (a, b) in out.iter().zip(want.iter()) {
                assert!((a - b).abs() < 1e-9, "ftran mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn btran_matches_dense_transpose_solve() {
        for seed in 1..6u64 {
            let m = 13;
            let (cols, dense) = test_basis(m, seed);
            // Transpose the dense matrix for the reference solve.
            let mut denset = vec![0.0; m * m];
            for r in 0..m {
                for c in 0..m {
                    denset[c * m + r] = dense[r * m + c];
                }
            }
            let basis: Vec<usize> = (0..m).collect();
            let mut f = BasisFactor::default();
            assert!(f.refactorize(&cols, &basis));
            let c: Vec<f64> = (0..m)
                .map(|i| (i as f64 * 0.61 + seed as f64).cos())
                .collect();
            let mut out = Vec::new();
            f.btran(&c, &mut out);
            let want = dense_solve(m, &denset, &c);
            for (a, b) in out.iter().zip(want.iter()) {
                assert!((a - b).abs() < 1e-9, "btran mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn eta_updates_track_column_replacement() {
        let m = 11;
        let (mut cols, _) = test_basis(m, 3);
        let basis: Vec<usize> = (0..m).collect();
        let mut f = BasisFactor::default();
        assert!(f.refactorize(&cols, &basis));

        // Replace basis position 4 by a new column a_q via an eta update, and
        // compare against refactorizing the updated basis from scratch.
        let new_col = vec![(2usize, 0.7), (4usize, 1.9), (8usize, -0.3)];
        let mut rhs = vec![0.0; m];
        for &(r, v) in &new_col {
            rhs[r] = v;
        }
        let mut u = Vec::new();
        f.ftran(&rhs, &mut u);
        assert!(u[4].abs() > 1e-9);
        f.push_eta(4, &u);
        assert_eq!(f.eta_count(), 1);

        cols.push(new_col);
        let mut basis2 = basis.clone();
        basis2[4] = m; // the appended column
        let mut fresh = BasisFactor::default();
        assert!(fresh.refactorize(&cols, &basis2));

        let probe: Vec<f64> = (0..m).map(|i| (i as f64 * 1.3).sin()).collect();
        let mut via_eta = Vec::new();
        let mut via_fresh = Vec::new();
        f.ftran(&probe, &mut via_eta);
        fresh.ftran(&probe, &mut via_fresh);
        for (a, b) in via_eta.iter().zip(via_fresh.iter()) {
            assert!((a - b).abs() < 1e-9, "eta ftran mismatch: {a} vs {b}");
        }
        let mut yb_eta = Vec::new();
        let mut yb_fresh = Vec::new();
        f.btran(&probe, &mut yb_eta);
        fresh.btran(&probe, &mut yb_fresh);
        for (a, b) in yb_eta.iter().zip(yb_fresh.iter()) {
            assert!((a - b).abs() < 1e-9, "eta btran mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let m = 4;
        let mut cols = vec![Vec::new(); m];
        // Two identical columns → structurally singular.
        cols[0] = vec![(0, 1.0), (1, 2.0)];
        cols[1] = vec![(0, 1.0), (1, 2.0)];
        cols[2] = vec![(2, 1.0)];
        cols[3] = vec![(3, 1.0)];
        let basis: Vec<usize> = (0..m).collect();
        let mut f = BasisFactor::default();
        assert!(!f.refactorize(&cols, &basis));
    }

    #[test]
    fn refactorize_bound_trips_on_eta_growth() {
        let m = 6;
        let (cols, _) = test_basis(m, 7);
        let basis: Vec<usize> = (0..m).collect();
        let mut f = BasisFactor {
            max_etas: 4,
            ..Default::default()
        };
        assert!(f.refactorize(&cols, &basis));
        assert!(!f.should_refactorize());
        let mut rhs = vec![0.0; m];
        let mut u = Vec::new();
        for i in 0..4 {
            rhs.iter_mut().for_each(|v| *v = 0.0);
            rhs[i] = 1.0;
            rhs[(i + 1) % m] = 0.5;
            f.ftran(&rhs, &mut u);
            let pos = (0..m)
                .max_by(|&a, &b| u[a].abs().total_cmp(&u[b].abs()))
                .unwrap();
            f.push_eta(pos, &u);
        }
        assert!(f.should_refactorize(), "4 etas with max_etas=4 must trip");
        assert!(f.refactorize(&cols, &basis));
        assert_eq!(f.eta_count(), 0, "refactorization resets the eta file");
        assert!(!f.should_refactorize());
    }
}
