//! Error types for the LP solver.

use std::fmt;

/// Errors returned when building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The program has no feasible solution.
    Infeasible,
    /// The objective can be improved without bound over the feasible region.
    Unbounded,
    /// The solver exceeded its iteration limit (should not happen with Bland's rule
    /// unless the limit is set very low).
    IterationLimit {
        /// Number of simplex pivots performed before giving up.
        iterations: usize,
    },
    /// A variable handle from a different [`crate::Problem`] was used, or an index was
    /// out of range.
    InvalidVariable {
        /// The offending variable index.
        index: usize,
        /// The number of variables in the problem.
        count: usize,
    },
    /// A constraint or objective contained a non-finite coefficient.
    NonFiniteCoefficient {
        /// Human-readable location of the offending coefficient.
        location: String,
    },
    /// The problem has no variables or no constraints where at least one is required.
    EmptyProblem,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} pivots"
                )
            }
            LpError::InvalidVariable { index, count } => {
                write!(
                    f,
                    "variable index {index} out of range for problem with {count} variables"
                )
            }
            LpError::NonFiniteCoefficient { location } => {
                write!(f, "non-finite coefficient in {location}")
            }
            LpError::EmptyProblem => write!(f, "problem has no variables"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = vec![
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::IterationLimit { iterations: 7 },
            LpError::InvalidVariable { index: 3, count: 2 },
            LpError::NonFiniteCoefficient {
                location: "objective".to_string(),
            },
            LpError::EmptyProblem,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
