//! Dense two-phase simplex implementation.
//!
//! The solver converts the user-facing [`Problem`] into standard form
//! (`min c'x  s.t.  Ax = b, x >= 0, b >= 0`) by adding slack, surplus and artificial
//! variables, runs a phase-1 simplex to find a basic feasible solution, and then a
//! phase-2 simplex on the original objective.  Dantzig's rule is used for pivot
//! selection by default and the solver falls back to Bland's rule after a configurable
//! number of pivots to guarantee termination on degenerate programs.

use crate::error::LpError;
use crate::problem::{ConstraintOp, Problem, Sense};
use crate::solution::Solution;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Tunables of the simplex solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimplexOptions {
    /// Numerical tolerance used for optimality and feasibility tests.
    pub tolerance: f64,
    /// Hard limit on the total number of pivots across both phases.
    pub max_iterations: usize,
    /// After this many pivots in a phase, switch from Dantzig's rule to Bland's rule to
    /// break potential cycles.
    pub bland_threshold: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 1_000_000,
            bland_threshold: 10_000,
        }
    }
}

/// Statistics describing a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Total number of pivots across phase 1 and phase 2.
    pub iterations: usize,
    /// Number of rows in the standard-form tableau.
    pub rows: usize,
    /// Number of columns (excluding the right-hand side) in the tableau.
    pub columns: usize,
    /// Whether the solve started from a cached basis (always `false` for the
    /// dense reference solver; see [`crate::SolverContext`]).
    pub warm_start: bool,
    /// Sparse LU refactorizations performed during this solve (always 0 for
    /// the dense reference solver, at least 1 for any revised solve).
    pub refactorizations: usize,
    /// Pivots applied as eta-file updates during this solve (0 for the dense
    /// reference solver, which carries a fully pivoted tableau instead).
    pub eta_pivots: usize,
}

/// The standard-form tableau plus bookkeeping.
struct Tableau {
    /// `rows x (cols + 1)` matrix; the last column is the right-hand side.
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Basis: for each row, the column index of its basic variable.
    basis: Vec<usize>,
    /// Phase-2 objective row (length `cols + 1`), kept reduced against the basis.
    objective: Vec<f64>,
    /// Phase-1 objective row, only meaningful during phase 1.
    phase1: Vec<f64>,
    /// Number of structural (user) variables.
    n_structural: usize,
    /// Column index of the first artificial variable.
    artificial_start: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * (self.cols + 1) + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * (self.cols + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }
}

/// Solves `problem` with the two-phase simplex method.
pub(crate) fn solve(problem: &Problem, options: &SimplexOptions) -> Result<Solution> {
    let mut tableau = build_tableau(problem);
    let mut iterations = 0usize;

    // Phase 1: drive artificial variables to zero.
    if tableau.artificial_start < tableau.cols {
        run_phase(&mut tableau, Phase::One, options, &mut iterations)?;
        let phase1_value = -tableau.phase1[tableau.cols];
        if phase1_value > options.tolerance.max(1e-7) {
            return Err(LpError::Infeasible);
        }
        drive_out_artificials(&mut tableau, options);
    }

    // Phase 2: optimise the true objective.
    run_phase(&mut tableau, Phase::Two, options, &mut iterations)?;

    let mut values = vec![0.0; problem.num_variables()];
    for (row, &basic_col) in tableau.basis.iter().enumerate() {
        if basic_col < tableau.n_structural {
            values[basic_col] = tableau.rhs(row);
        }
    }
    // Clamp tiny negatives produced by round-off.  Only negatives: a
    // legitimate tiny positive value (e.g. a sliver of a GPU share priced
    // below the tolerance) must survive extraction.
    for v in &mut values {
        if *v < 0.0 && *v > -options.tolerance {
            *v = 0.0;
        }
    }

    let mut objective_value: f64 = problem
        .objective()
        .iter()
        .zip(values.iter())
        .map(|(c, x)| c * x)
        .sum();
    if objective_value.abs() < options.tolerance {
        objective_value = 0.0;
    }

    let stats = SolverStats {
        iterations,
        rows: tableau.rows,
        columns: tableau.cols,
        warm_start: false,
        refactorizations: 0,
        eta_pivots: 0,
    };
    Ok(Solution::new(values, objective_value, stats))
}

enum Phase {
    One,
    Two,
}

/// Builds the standard-form tableau:
/// * every constraint gets a non-negative right-hand side,
/// * `<=` constraints get a slack column,
/// * `>=` constraints get a surplus column and an artificial column,
/// * `==` constraints get an artificial column.
fn build_tableau(problem: &Problem) -> Tableau {
    let n = problem.num_variables();
    let m = problem.num_constraints();

    // Count extra columns.
    let mut n_slack = 0usize;
    let mut n_artificial = 0usize;
    for c in problem.constraints() {
        let flip = c.rhs < 0.0;
        let op = effective_op(c.op, flip);
        match op {
            ConstraintOp::Le => n_slack += 1,
            ConstraintOp::Ge => {
                n_slack += 1;
                n_artificial += 1;
            }
            ConstraintOp::Eq => n_artificial += 1,
        }
    }

    let cols = n + n_slack + n_artificial;
    let artificial_start = n + n_slack;
    let mut data = vec![0.0; m * (cols + 1)];
    let mut basis = vec![usize::MAX; m];

    let mut slack_cursor = n;
    let mut artificial_cursor = artificial_start;

    for (row, c) in problem.constraints().iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        let op = effective_op(c.op, flip);
        let offset = row * (cols + 1);

        for (var, coeff) in c.expr.terms() {
            data[offset + var.index()] += sign * coeff;
        }
        data[offset + cols] = sign * c.rhs;

        match op {
            ConstraintOp::Le => {
                data[offset + slack_cursor] = 1.0;
                basis[row] = slack_cursor;
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                data[offset + slack_cursor] = -1.0;
                slack_cursor += 1;
                data[offset + artificial_cursor] = 1.0;
                basis[row] = artificial_cursor;
                artificial_cursor += 1;
            }
            ConstraintOp::Eq => {
                data[offset + artificial_cursor] = 1.0;
                basis[row] = artificial_cursor;
                artificial_cursor += 1;
            }
        }
    }

    // Phase-2 objective row: minimise.  Maximisation is handled by negating the
    // coefficients here and negating back when reporting the objective (we recompute
    // the objective from the primal values instead, so only the direction matters).
    let mut objective = vec![0.0; cols + 1];
    for (i, &c) in problem.objective().iter().enumerate() {
        objective[i] = match problem.sense() {
            Sense::Minimize => c,
            Sense::Maximize => -c,
        };
    }

    // Phase-1 objective row: minimise the sum of artificial variables.  Expressed in
    // reduced form against the initial basis (subtract rows whose basic variable is
    // artificial).
    let mut phase1 = vec![0.0; cols + 1];
    for col in artificial_start..cols {
        phase1[col] = 1.0;
    }
    for (row, &basic) in basis.iter().enumerate() {
        if basic >= artificial_start {
            for col in 0..=cols {
                phase1[col] -= data[row * (cols + 1) + col];
            }
        }
    }

    // Reduce the phase-2 objective against slack basic variables (their reduced cost is
    // already zero because the objective has no slack terms); nothing to do for them.

    let mut tableau = Tableau {
        data,
        rows: m,
        cols,
        basis,
        objective,
        phase1,
        n_structural: n,
        artificial_start,
    };
    // Reduce the phase-2 objective against any artificial basic variables as well, so
    // that it stays consistent once phase 2 starts (the artificial columns carry zero
    // phase-2 cost, so no reduction is required — reduced costs of basic columns are
    // zero by construction here).
    reduce_objective_against_basis(&mut tableau);
    tableau
}

fn effective_op(op: ConstraintOp, flipped: bool) -> ConstraintOp {
    if !flipped {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

/// Makes the reduced costs of all basic columns exactly zero in the phase-2 objective.
fn reduce_objective_against_basis(t: &mut Tableau) {
    for row in 0..t.rows {
        let basic = t.basis[row];
        let coeff = t.objective[basic];
        if coeff != 0.0 {
            for col in 0..=t.cols {
                t.objective[col] -= coeff * t.at(row, col);
            }
        }
    }
}

/// Runs one phase of the simplex method until optimality.
fn run_phase(
    t: &mut Tableau,
    phase: Phase,
    options: &SimplexOptions,
    iterations: &mut usize,
) -> Result<()> {
    let mut phase_pivots = 0usize;
    loop {
        if *iterations >= options.max_iterations {
            return Err(LpError::IterationLimit {
                iterations: *iterations,
            });
        }
        let use_bland = phase_pivots >= options.bland_threshold;
        let entering = {
            let row = match phase {
                Phase::One => &t.phase1,
                Phase::Two => &t.objective,
            };
            select_entering(row, t, &phase, options, use_bland)
        };
        let Some(entering) = entering else {
            return Ok(()); // optimal for this phase
        };

        let Some(leaving_row) = select_leaving(t, entering, options, use_bland) else {
            // No leaving row: the column is unbounded.  During phase 1 this cannot
            // happen for a bounded artificial objective, so report unboundedness.
            return match phase {
                Phase::One => Err(LpError::Infeasible),
                Phase::Two => Err(LpError::Unbounded),
            };
        };

        pivot(t, leaving_row, entering);
        *iterations += 1;
        phase_pivots += 1;
    }
}

/// Chooses the entering column (most negative reduced cost, or Bland's smallest index).
fn select_entering(
    reduced: &[f64],
    t: &Tableau,
    phase: &Phase,
    options: &SimplexOptions,
    bland: bool,
) -> Option<usize> {
    let limit = match phase {
        // During phase 2, never let an artificial variable re-enter the basis.
        Phase::Two => t.artificial_start,
        Phase::One => t.cols,
    };
    if bland {
        (0..limit).find(|&c| reduced[c] < -options.tolerance)
    } else {
        let mut best: Option<(usize, f64)> = None;
        for c in 0..limit {
            let r = reduced[c];
            if r < -options.tolerance && best.is_none_or(|(_, b)| r < b) {
                best = Some((c, r));
            }
        }
        best.map(|(c, _)| c)
    }
}

/// Minimum-ratio test; returns the pivot row.
fn select_leaving(
    t: &Tableau,
    entering: usize,
    options: &SimplexOptions,
    bland: bool,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for row in 0..t.rows {
        let coeff = t.at(row, entering);
        if coeff > options.tolerance {
            let ratio = t.rhs(row) / coeff;
            match best {
                None => best = Some((row, ratio)),
                Some((brow, bratio)) => {
                    let better = if bland {
                        // Bland: tie-break on the smallest basis column index.
                        ratio < bratio - options.tolerance
                            || ((ratio - bratio).abs() <= options.tolerance
                                && t.basis[row] < t.basis[brow])
                    } else {
                        ratio < bratio - options.tolerance
                            || ((ratio - bratio).abs() <= options.tolerance
                                && t.at(row, entering) > t.at(brow, entering))
                    };
                    if better {
                        best = Some((row, ratio));
                    }
                }
            }
        }
    }
    best.map(|(row, _)| row)
}

/// Performs a Gauss–Jordan pivot on `(pivot_row, pivot_col)` and updates both objective
/// rows and the basis.
fn pivot(t: &mut Tableau, pivot_row: usize, pivot_col: usize) {
    let width = t.cols + 1;
    let pivot_value = t.at(pivot_row, pivot_col);
    debug_assert!(pivot_value.abs() > 0.0, "pivot on a zero element");

    // Normalise the pivot row.
    for col in 0..width {
        *t.at_mut(pivot_row, col) /= pivot_value;
    }
    *t.at_mut(pivot_row, pivot_col) = 1.0;

    // Eliminate the pivot column from all other rows.
    for row in 0..t.rows {
        if row == pivot_row {
            continue;
        }
        let factor = t.at(row, pivot_col);
        if factor != 0.0 {
            for col in 0..width {
                let delta = factor * t.at(pivot_row, col);
                *t.at_mut(row, col) -= delta;
            }
            *t.at_mut(row, pivot_col) = 0.0;
        }
    }

    // Update the two objective rows.
    let factor = t.objective[pivot_col];
    if factor != 0.0 {
        for col in 0..width {
            t.objective[col] -= factor * t.at(pivot_row, col);
        }
        t.objective[pivot_col] = 0.0;
    }
    let factor = t.phase1[pivot_col];
    if factor != 0.0 {
        for col in 0..width {
            t.phase1[col] -= factor * t.at(pivot_row, col);
        }
        t.phase1[pivot_col] = 0.0;
    }

    t.basis[pivot_row] = pivot_col;
}

/// After phase 1, pivots any artificial variables that are still basic (at value zero)
/// out of the basis, or marks their row as redundant.
fn drive_out_artificials(t: &mut Tableau, options: &SimplexOptions) {
    for row in 0..t.rows {
        if t.basis[row] >= t.artificial_start {
            // Find a non-artificial column with a nonzero coefficient in this row.
            let mut found = None;
            for col in 0..t.artificial_start {
                if t.at(row, col).abs() > options.tolerance {
                    found = Some(col);
                    break;
                }
            }
            if let Some(col) = found {
                pivot(t, row, col);
            }
            // If no column is found the row is redundant (all zeros); the artificial
            // stays basic at value zero which is harmless because phase 2 never lets
            // artificial columns re-enter and the row cannot be selected for pivoting
            // with a positive coefficient in any structural column.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn maximize_two_variables() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic textbook problem).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 3.0);
        p.set_objective_coefficient(y, 5.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let s = p.solve().unwrap();
        assert_close(s.objective_value(), 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn minimize_with_ge_constraints() {
        // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 0.12);
        p.set_objective_coefficient(y, 0.15);
        p.add_constraint(&[(x, 60.0), (y, 60.0)], ConstraintOp::Ge, 300.0);
        p.add_constraint(&[(x, 12.0), (y, 6.0)], ConstraintOp::Ge, 36.0);
        p.add_constraint(&[(x, 10.0), (y, 30.0)], ConstraintOp::Ge, 90.0);
        let s = p.solve().unwrap();
        assert_close(s.objective_value(), 0.66);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 10, x - y = 2 -> x = 6, y = 4, obj = 14.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 10.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.value(x), 6.0);
        assert_close(s.value(y), 4.0);
        assert_close(s.objective_value(), 14.0);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // x - y <= -2 with x, y >= 0 means y >= x + 2; maximize x + y bounded by y <= 5.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, -2.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 5.0);
        let s = p.solve().unwrap();
        assert_close(s.value(y), 5.0);
        assert_close(s.value(x), 3.0);
    }

    #[test]
    fn detects_infeasible() {
        // x >= 5 and x <= 3 simultaneously.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective_coefficient(x, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 5.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn minimization_unbounded_below() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, -1.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 10.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A degenerate LP (multiple constraints intersect at the optimum).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 1.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(y, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(x, 2.0), (y, 1.0)], ConstraintOp::Le, 2.0);
        let s = p.solve().unwrap();
        assert_close(s.objective_value(), 1.0);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        let s = p.solve().unwrap();
        assert!(s.value(x) >= -1e-9 && s.value(x) <= 3.0 + 1e-9);
        assert_close(s.objective_value(), 0.0);
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        // The same equality listed twice leaves a redundant artificial row after
        // phase 1; the solver must still find the optimum.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 2.0);
        p.set_objective_coefficient(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 4.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], ConstraintOp::Eq, 8.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 3.0);
        let s = p.solve().unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 1.0);
        assert_close(s.objective_value(), 7.0);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        let y = p.add_variable("y");
        p.set_objective_coefficient(x, 3.0);
        p.set_objective_coefficient(y, 5.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let opts = SimplexOptions {
            max_iterations: 0,
            ..Default::default()
        };
        assert!(matches!(
            p.solve_with(&opts),
            Err(LpError::IterationLimit { .. })
        ));
    }

    #[test]
    fn stats_are_populated() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_variable("x");
        p.set_objective_coefficient(x, 1.0);
        p.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        let s = p.solve().unwrap();
        assert!(s.stats().iterations >= 1);
        assert_eq!(s.stats().rows, 1);
        assert!(s.stats().columns >= 2);
    }

    #[test]
    fn equal_throughput_structure_like_noncoop_oef() {
        // A miniature version of the non-cooperative OEF program (9):
        // two users, two GPU types with capacities 1 and 1, speedups (1,2) and (1,5).
        // maximize total throughput subject to equal per-user throughput.
        let mut p = Problem::new(Sense::Maximize);
        let x11 = p.add_variable("x11");
        let x12 = p.add_variable("x12");
        let x21 = p.add_variable("x21");
        let x22 = p.add_variable("x22");
        for (v, c) in [(x11, 1.0), (x12, 2.0), (x21, 1.0), (x22, 5.0)] {
            p.set_objective_coefficient(v, c);
        }
        p.add_constraint(&[(x11, 1.0), (x21, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(x12, 1.0), (x22, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(
            &[(x11, 1.0), (x12, 2.0), (x21, -1.0), (x22, -5.0)],
            ConstraintOp::Eq,
            0.0,
        );
        let s = p.solve().unwrap();
        let e1 = s.value(x11) + 2.0 * s.value(x12);
        let e2 = s.value(x21) + 5.0 * s.value(x22);
        assert!(
            (e1 - e2).abs() < 1e-6,
            "equal-throughput constraint violated"
        );
        // Feasibility of capacities.
        assert!(s.value(x11) + s.value(x21) <= 1.0 + 1e-6);
        assert!(s.value(x12) + s.value(x22) <= 1.0 + 1e-6);
    }
}
