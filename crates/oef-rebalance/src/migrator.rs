//! The tenant migrator: extract-from-source, install-into-target, roll back
//! on refusal.
//!
//! Migration composes the two seams `oef-service` exposes —
//! [`SchedulerService::extract_tenant`] and
//! [`SchedulerService::install_tenant`] — into an operation that is atomic
//! with respect to the command stream (the coordinator is single-threaded per
//! command) and **never loses a tenant**: if the target shard refuses the
//! install (quota, profile arity), the extract is reinstalled on the source
//! shard.  The reinstall necessarily mints a fresh handle — the old one died
//! at extraction — so the failure variant reports it and the caller keeps the
//! client's handle working by adding a forwarding entry, exactly as it would
//! for a success.

use oef_service::{CommandError, ErrorCode, SchedulerService};

/// Why a migration did not land on the target shard.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateFailure {
    /// The target refused the tenant; it is back on the source shard under
    /// `reinstalled` (a fresh shard-local handle — map the old handle to it).
    Rejected {
        /// Machine-readable category from the refusing shard.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// The tenant's fresh handle on the *source* shard.
        reinstalled: u64,
    },
    /// Both the install and the rollback failed — the tenant's state is
    /// gone.  Unreachable through the wire (a freshly extracted tenant always
    /// fits back into the slot it vacated); kept as data rather than a panic
    /// so a daemon survives even a logic bug here.
    Lost {
        /// What failed.
        message: String,
    },
}

impl MigrateFailure {
    /// The wire error this failure should surface as.
    pub fn to_command_error(&self) -> CommandError {
        match self {
            MigrateFailure::Rejected { code, message, .. } => (*code, message.clone()),
            MigrateFailure::Lost { message } => (ErrorCode::Internal, message.clone()),
        }
    }
}

impl std::fmt::Display for MigrateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateFailure::Rejected { code, message, .. } => {
                write!(f, "target shard refused the tenant ({code}): {message}")
            }
            MigrateFailure::Lost { message } => {
                write!(f, "tenant state lost mid-migration: {message}")
            }
        }
    }
}

impl std::error::Error for MigrateFailure {}

/// Moves tenants between scheduler shards.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantMigrator;

impl TenantMigrator {
    /// Moves the tenant behind `local_handle` from `shards[from]` to
    /// `shards[to]`, returning the fresh shard-local handle the target
    /// minted.
    ///
    /// # Errors
    ///
    /// * `Rejected` with the source shard's error when the handle is unknown
    ///   (`reinstalled` is 0 — nothing was extracted).
    /// * `Rejected` with the target's refusal when the install fails; the
    ///   tenant is back on the source under the reported fresh handle.
    ///
    /// # Panics
    ///
    /// Panics when `from == to` or either index is out of bounds — routing
    /// bugs, never wire input (the coordinator validates shard indices).
    pub fn migrate(
        shards: &mut [SchedulerService],
        from: usize,
        to: usize,
        local_handle: u64,
    ) -> Result<u64, MigrateFailure> {
        assert!(from < shards.len() && to < shards.len(), "shard bounds");
        assert_ne!(from, to, "migration source and target must differ");
        let extract = shards[from]
            .extract_tenant(local_handle)
            .map_err(|(code, message)| MigrateFailure::Rejected {
                code,
                message,
                reinstalled: 0,
            })?;
        match shards[to].install_tenant(extract.clone()) {
            Ok(new_local) => Ok(new_local),
            Err((code, message)) => match shards[from].install_tenant(extract) {
                Ok(reinstalled) => Err(MigrateFailure::Rejected {
                    code,
                    message,
                    reinstalled,
                }),
                Err((_, rollback)) => Err(MigrateFailure::Lost {
                    message: format!(
                        "install on shard {to} failed ({message}), rollback onto shard {from} \
                         also failed ({rollback})"
                    ),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oef_cluster::ClusterTopology;
    use oef_service::{Command, Response, ServiceConfig, ServiceLimits};

    fn shard(max_tenants: usize) -> SchedulerService {
        SchedulerService::new(
            ClusterTopology::paper_cluster(),
            ServiceConfig {
                limits: ServiceLimits {
                    max_tenants,
                    ..ServiceLimits::default()
                },
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    fn join(service: &mut SchedulerService, name: &str) -> u64 {
        match service.apply(
            Command::TenantJoin {
                name: name.into(),
                weight: 1,
                speedup: vec![1.0, 1.2, 1.4],
            },
            0,
        ) {
            Response::TenantJoined { tenant } => tenant,
            other => panic!("join failed: {other:?}"),
        }
    }

    #[test]
    fn migrate_moves_the_tenant_and_mints_on_the_target() {
        let mut shards = vec![shard(8), shard(8)];
        let alice = join(&mut shards[0], "alice");
        let new_local = TenantMigrator::migrate(&mut shards, 0, 1, alice).unwrap();
        assert_eq!(shards[0].tenant_handles().len(), 0);
        assert_eq!(shards[1].tenant_handles(), &[new_local]);
        assert_eq!(shards[1].state().tenant(0).name, "alice");
        // The old local handle is dead on the source.
        let err = shards[0].extract_tenant(alice).unwrap_err();
        assert_eq!(err.0, ErrorCode::UnknownTenant);
    }

    #[test]
    fn refused_install_rolls_the_tenant_back() {
        let mut shards = vec![shard(8), shard(0)];
        let alice = join(&mut shards[0], "alice");
        let failure = TenantMigrator::migrate(&mut shards, 0, 1, alice).unwrap_err();
        let MigrateFailure::Rejected {
            code, reinstalled, ..
        } = failure
        else {
            panic!("expected Rejected, got {failure:?}");
        };
        assert_eq!(code, ErrorCode::QuotaExceeded);
        assert_ne!(reinstalled, 0);
        assert_ne!(reinstalled, alice, "rollback re-mints the handle");
        assert_eq!(shards[0].tenant_handles(), &[reinstalled]);
        assert_eq!(shards[0].state().tenant(0).name, "alice");
        assert_eq!(shards[1].tenant_handles().len(), 0);
    }

    #[test]
    fn unknown_handle_fails_without_touching_either_shard() {
        let mut shards = vec![shard(8), shard(8)];
        join(&mut shards[0], "alice");
        let failure = TenantMigrator::migrate(&mut shards, 0, 1, 999).unwrap_err();
        assert!(matches!(
            failure,
            MigrateFailure::Rejected {
                code: ErrorCode::UnknownTenant,
                reinstalled: 0,
                ..
            }
        ));
        assert_eq!(shards[0].tenant_handles().len(), 1);
        assert_eq!(shards[1].tenant_handles().len(), 0);
    }
}
