//! Rebalance planning: pure policies turning load observations into a
//! [`MigrationPlan`].
//!
//! A policy simulates its own moves on a scratch copy of the scores, so a
//! plan's `imbalance_after` is exactly what executing it will produce (moves
//! only shift load, they never create or destroy it).  Every move in a plan
//! is *strictly improving* — it narrows the gap between the shards it
//! touches — which both bounds plan length and prevents oscillation: a
//! rebalance pass over a balanced federation plans nothing.

use crate::load::{shard_score, tenant_score, LoadWeights, ShardObservation};

/// One planned tenant move (by live wire handle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedMove {
    /// The tenant's current wire handle.
    pub tenant: u64,
    /// Source shard.
    pub from: usize,
    /// Target shard.
    pub to: usize,
}

/// What a policy decided: the moves plus the score spread before and after
/// (simulated; execution reproduces it exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// Moves in execution order.
    pub moves: Vec<PlannedMove>,
    /// Score spread (max − min over shards) before any move.
    pub imbalance_before: f64,
    /// Score spread after all planned moves.
    pub imbalance_after: f64,
}

impl MigrationPlan {
    /// A plan that moves nothing.
    pub fn empty(imbalance: f64) -> Self {
        Self {
            moves: Vec::new(),
            imbalance_before: imbalance,
            imbalance_after: imbalance,
        }
    }
}

/// A strategy planning migrations from observed shard load.
///
/// `threshold` is the score spread considered balanced and `max_moves` caps
/// the plan length; policies are free to interpret or ignore the threshold
/// (greedy top-k does), but must respect the cap.
pub trait RebalancePolicy: Send {
    /// Wire name of the policy (used in snapshots and configs).
    fn name(&self) -> &'static str;

    /// Plans migrations over the observed loads.
    fn plan(
        &self,
        observations: &[ShardObservation],
        weights: &LoadWeights,
        threshold: f64,
        max_moves: usize,
    ) -> MigrationPlan;
}

/// Mutable planning scratch shared by the built-in policies: per-shard
/// scores plus the movable tenants (handle, score) per shard.
struct Scratch {
    scores: Vec<f64>,
    tenants: Vec<Vec<(u64, f64)>>,
}

impl Scratch {
    fn new(observations: &[ShardObservation], weights: &LoadWeights) -> Self {
        Self {
            scores: observations
                .iter()
                .map(|o| shard_score(o, weights))
                .collect(),
            tenants: observations
                .iter()
                .map(|o| {
                    o.tenants
                        .iter()
                        .map(|t| (t.handle, tenant_score(t, weights)))
                        .collect()
                })
                .collect(),
        }
    }

    fn spread(&self) -> f64 {
        let max = self.scores.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.scores.iter().cloned().fold(f64::MAX, f64::min);
        if self.scores.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Most- and least-loaded shard, ties toward the lowest index.
    fn extremes(&self) -> (usize, usize) {
        let mut max_i = 0;
        let mut min_i = 0;
        for (i, &s) in self.scores.iter().enumerate() {
            if s > self.scores[max_i] {
                max_i = i;
            }
            if s < self.scores[min_i] {
                min_i = i;
            }
        }
        (max_i, min_i)
    }

    /// Executes one simulated move and records it.
    fn apply(&mut self, moves: &mut Vec<PlannedMove>, from: usize, to: usize, pick: usize) {
        let (handle, score) = self.tenants[from].remove(pick);
        self.scores[from] -= score;
        self.scores[to] += score;
        self.tenants[to].push((handle, score));
        moves.push(PlannedMove {
            tenant: handle,
            from,
            to,
        });
    }
}

/// Index of the tenant on `from` whose move best levels the pairwise gap:
/// the score closest to `gap / 2`, subject to strict improvement
/// (`0 < score < gap`).  Ties break toward the smallest handle so planning
/// is deterministic.  `None` when no tenant improves the gap.
fn best_leveling_pick(scratch: &Scratch, from: usize, gap: f64) -> Option<usize> {
    scratch.tenants[from]
        .iter()
        .enumerate()
        .filter(|(_, (_, score))| *score > 0.0 && *score < gap)
        .min_by(|(_, (ha, sa)), (_, (hb, sb))| {
            (gap - 2.0 * sa)
                .abs()
                .partial_cmp(&(gap - 2.0 * sb).abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ha.cmp(hb))
        })
        .map(|(i, _)| i)
}

/// Index of the heaviest strictly-improving tenant on `from` (ties toward
/// the smallest handle).
fn heaviest_improving_pick(scratch: &Scratch, from: usize, gap: f64) -> Option<usize> {
    scratch.tenants[from]
        .iter()
        .enumerate()
        .filter(|(_, (_, score))| *score > 0.0 && *score < gap)
        .max_by(|(_, (ha, sa)), (_, (hb, sb))| {
            sa.partial_cmp(sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(hb.cmp(ha))
        })
        .map(|(i, _)| i)
}

/// Moves tenants from the most- to the least-loaded shard until the score
/// spread falls within `threshold` (or nothing improves).  Each move picks
/// the tenant whose score best levels the pair — large tenants jump whole
/// gaps, small ones fine-tune.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThresholdPolicy;

impl RebalancePolicy for ThresholdPolicy {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn plan(
        &self,
        observations: &[ShardObservation],
        weights: &LoadWeights,
        threshold: f64,
        max_moves: usize,
    ) -> MigrationPlan {
        let mut scratch = Scratch::new(observations, weights);
        let imbalance_before = scratch.spread();
        let mut moves = Vec::new();
        while moves.len() < max_moves {
            let (from, to) = scratch.extremes();
            let gap = scratch.scores[from] - scratch.scores[to];
            if gap <= threshold {
                break;
            }
            let Some(pick) = best_leveling_pick(&scratch, from, gap) else {
                break;
            };
            scratch.apply(&mut moves, from, to, pick);
        }
        MigrationPlan {
            imbalance_after: scratch.spread(),
            imbalance_before,
            moves,
        }
    }
}

/// Always flattens: up to `max_moves` moves, each shifting the *heaviest*
/// improvable tenant from the most- to the least-loaded shard, regardless of
/// any threshold.  Useful when an operator wants one decisive pass rather
/// than convergence-to-within-epsilon.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyTopK;

impl RebalancePolicy for GreedyTopK {
    fn name(&self) -> &'static str {
        "greedy-top-k"
    }

    fn plan(
        &self,
        observations: &[ShardObservation],
        weights: &LoadWeights,
        _threshold: f64,
        max_moves: usize,
    ) -> MigrationPlan {
        let mut scratch = Scratch::new(observations, weights);
        let imbalance_before = scratch.spread();
        let mut moves = Vec::new();
        while moves.len() < max_moves {
            let (from, to) = scratch.extremes();
            let gap = scratch.scores[from] - scratch.scores[to];
            let Some(pick) = heaviest_improving_pick(&scratch, from, gap) else {
                break;
            };
            scratch.apply(&mut moves, from, to, pick);
        }
        MigrationPlan {
            imbalance_after: scratch.spread(),
            imbalance_before,
            moves,
        }
    }
}

/// Builds a boxed policy from its wire name (`threshold`, `greedy-top-k`).
pub fn rebalance_policy_from_name(name: &str) -> Option<Box<dyn RebalancePolicy>> {
    match name {
        "threshold" => Some(Box::new(ThresholdPolicy)),
        "greedy-top-k" => Some(Box::new(GreedyTopK)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::TenantObservation;

    fn obs(shard: usize, tenant_jobs: &[usize]) -> ShardObservation {
        ShardObservation {
            shard,
            tenants: tenant_jobs
                .iter()
                .enumerate()
                .map(|(i, &jobs)| TenantObservation {
                    handle: ((shard as u64) << 56) | (i as u64 + 1),
                    jobs,
                })
                .collect(),
            solve_ewma_secs: 0.0,
        }
    }

    #[test]
    fn threshold_policy_converges_within_threshold() {
        // Shard 0 holds 6 one-job tenants (score 7.5), shard 1 none.
        let observations = [obs(0, &[1, 1, 1, 1, 1, 1]), obs(1, &[])];
        let plan = ThresholdPolicy.plan(&observations, &LoadWeights::default(), 2.0, 16);
        assert!(plan.imbalance_before > 7.0);
        assert!(
            plan.imbalance_after <= 2.0,
            "spread {} should be within the threshold",
            plan.imbalance_after
        );
        assert!(
            plan.moves.iter().all(|m| m.from == 0 && m.to == 1),
            "{:?}",
            plan.moves
        );
        // Balanced input plans nothing.
        let balanced = [obs(0, &[1, 1]), obs(1, &[1, 1])];
        let plan = ThresholdPolicy.plan(&balanced, &LoadWeights::default(), 2.0, 16);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.imbalance_before, plan.imbalance_after);
    }

    #[test]
    fn threshold_policy_respects_the_move_cap() {
        let observations = [obs(0, &[1; 10]), obs(1, &[])];
        let plan = ThresholdPolicy.plan(&observations, &LoadWeights::default(), 0.5, 2);
        assert_eq!(plan.moves.len(), 2);
        assert!(plan.imbalance_after < plan.imbalance_before);
    }

    #[test]
    fn greedy_top_k_moves_the_heaviest_tenants_first() {
        // One heavy tenant (8 jobs → score 3.0) among light ones.
        let observations = [obs(0, &[8, 1, 1]), obs(1, &[1])];
        let plan = GreedyTopK.plan(&observations, &LoadWeights::default(), 999.0, 1);
        assert_eq!(plan.moves.len(), 1, "threshold is ignored");
        let heavy = observations[0].tenants[0].handle;
        assert_eq!(plan.moves[0].tenant, heavy);
    }

    #[test]
    fn planning_is_deterministic() {
        let observations = [obs(0, &[2, 2, 1, 1, 3]), obs(1, &[1]), obs(2, &[])];
        let a = ThresholdPolicy.plan(&observations, &LoadWeights::default(), 1.0, 8);
        let b = ThresholdPolicy.plan(&observations, &LoadWeights::default(), 1.0, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn names_resolve() {
        assert_eq!(
            rebalance_policy_from_name("threshold").unwrap().name(),
            "threshold"
        );
        assert_eq!(
            rebalance_policy_from_name("greedy-top-k").unwrap().name(),
            "greedy-top-k"
        );
        assert!(rebalance_policy_from_name("random").is_none());
    }
}
