//! The online rebalancer: configuration plus the policy it drives.
//!
//! A [`Rebalancer`] is the long-lived piece the coordinator owns.  Its
//! [`RebalancerConfig`] is durable state — it rides inside the federated (v5)
//! snapshot envelope, so a restored federation plans the same moves the
//! original would have — while the boxed policy is rebuilt from the config's
//! wire name on construction and restore.

use crate::load::{shard_score, LoadWeights, ShardObservation};
use crate::policy::{rebalance_policy_from_name, MigrationPlan, RebalancePolicy};
use serde::{Deserialize, Serialize};

/// Durable rebalancer configuration (part of the v5 snapshot envelope).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalancerConfig {
    /// Policy wire name (see [`rebalance_policy_from_name`]).
    pub policy: String,
    /// Score spread (most- minus least-loaded shard) considered balanced.
    /// With default weights a unit of score is one job-less tenant, so the
    /// default of 2.0 reads "within two tenants of even".
    pub threshold: f64,
    /// Maximum migrations one `Rebalance` pass may execute.
    pub max_moves: usize,
    /// Weights combining tenants, jobs and solve latency into the score.
    pub weights: LoadWeights,
}

impl Default for RebalancerConfig {
    fn default() -> Self {
        Self {
            policy: "threshold".to_string(),
            threshold: 2.0,
            max_moves: 4,
            weights: LoadWeights::default(),
        }
    }
}

/// The planning half of cross-shard rebalancing: owns the config and the
/// policy; the coordinator owns execution (and the forwarding table).
pub struct Rebalancer {
    config: RebalancerConfig,
    policy: Box<dyn RebalancePolicy>,
}

impl std::fmt::Debug for Rebalancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rebalancer")
            .field("policy", &self.policy.name())
            .field("threshold", &self.config.threshold)
            .field("max_moves", &self.config.max_moves)
            .finish_non_exhaustive()
    }
}

impl Rebalancer {
    /// Builds a rebalancer from its durable configuration.
    ///
    /// # Errors
    ///
    /// Returns the unknown policy name when it does not resolve.
    pub fn new(config: RebalancerConfig) -> Result<Self, String> {
        let policy = rebalance_policy_from_name(&config.policy)
            .ok_or_else(|| format!("unknown rebalance policy `{}`", config.policy))?;
        Ok(Self { config, policy })
    }

    /// The durable configuration.
    pub fn config(&self) -> &RebalancerConfig {
        &self.config
    }

    /// The active policy's wire name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current score spread over the observed shards.
    pub fn imbalance(&self, observations: &[ShardObservation]) -> f64 {
        let scores: Vec<f64> = observations
            .iter()
            .map(|o| shard_score(o, &self.config.weights))
            .collect();
        match (
            scores.iter().cloned().fold(f64::MIN, f64::max),
            scores.iter().cloned().fold(f64::MAX, f64::min),
        ) {
            (max, min) if !scores.is_empty() => max - min,
            _ => 0.0,
        }
    }

    /// Whether the observed spread is within the configured threshold.
    pub fn is_balanced(&self, observations: &[ShardObservation]) -> bool {
        self.imbalance(observations) <= self.config.threshold
    }

    /// Plans one rebalancing pass.
    pub fn plan(&self, observations: &[ShardObservation]) -> MigrationPlan {
        self.policy.plan(
            observations,
            &self.config.weights,
            self.config.threshold,
            self.config.max_moves,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::TenantObservation;

    fn obs(shard: usize, tenants: usize) -> ShardObservation {
        ShardObservation {
            shard,
            tenants: (0..tenants)
                .map(|i| TenantObservation {
                    handle: ((shard as u64) << 56) | (i as u64 + 1),
                    jobs: 1,
                })
                .collect(),
            solve_ewma_secs: 0.0,
        }
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = RebalancerConfig {
            policy: "greedy-top-k".into(),
            threshold: 1.5,
            max_moves: 8,
            weights: LoadWeights {
                tenant: 1.0,
                job: 0.5,
                latency: 10.0,
            },
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: RebalancerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn rebalancer_plans_within_its_config() {
        let rebalancer = Rebalancer::new(RebalancerConfig::default()).unwrap();
        let observations = [obs(0, 8), obs(1, 0)];
        assert!(!rebalancer.is_balanced(&observations));
        let plan = rebalancer.plan(&observations);
        assert!(!plan.moves.is_empty());
        assert!(plan.moves.len() <= rebalancer.config().max_moves);
        assert!(plan.imbalance_after < plan.imbalance_before);
        assert!(rebalancer.is_balanced(&[obs(0, 2), obs(1, 1)]));
    }

    #[test]
    fn unknown_policy_is_a_construction_error() {
        let err = Rebalancer::new(RebalancerConfig {
            policy: "chaotic".into(),
            ..RebalancerConfig::default()
        })
        .unwrap_err();
        assert!(err.contains("chaotic"));
    }
}
