//! Shard load observations and the scoring that turns them into one number.
//!
//! The rebalancer never touches live scheduler state: the coordinator samples
//! each shard into a [`ShardObservation`] and planning runs on the sample.
//! Scores are deliberately simple — a weighted sum of tenants, unfinished
//! jobs and the shard's solve-latency EWMA — because the quantity that
//! actually throttles a federation is the slowest shard's LP, whose cost
//! grows superlinearly in its *tenant* count; jobs and latency refine the
//! picture without changing its shape.

use oef_core::sharded;
use oef_service::SchedulerService;
use serde::{Deserialize, Serialize};

/// One tenant as seen by the rebalancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantObservation {
    /// The tenant's live wire handle (shard-tagged).
    pub handle: u64,
    /// Unfinished jobs the tenant holds.
    pub jobs: usize,
}

/// One shard's load at observation time.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardObservation {
    /// Shard index.
    pub shard: usize,
    /// Live tenants on the shard, in dense order.
    pub tenants: Vec<TenantObservation>,
    /// Exponentially weighted moving average of the shard's per-round solve
    /// latency, in seconds (0 before the shard's first solved round).
    pub solve_ewma_secs: f64,
}

impl ShardObservation {
    /// Samples one scheduler shard.  `solve_ewma_secs` comes from the
    /// coordinator (the shard itself does not know how its solves compare
    /// across the federation's fan-out).
    pub fn from_service(shard: usize, service: &SchedulerService, solve_ewma_secs: f64) -> Self {
        let state = service.state();
        let tenants = service
            .tenant_handles()
            .iter()
            .enumerate()
            .map(|(index, &local)| TenantObservation {
                handle: sharded::encode(shard, local),
                jobs: state
                    .tenant(index)
                    .jobs
                    .iter()
                    .filter(|j| !j.is_finished())
                    .count(),
            })
            .collect();
        Self {
            shard,
            tenants,
            solve_ewma_secs,
        }
    }

    /// Total unfinished jobs on the shard.
    pub fn jobs(&self) -> usize {
        self.tenants.iter().map(|t| t.jobs).sum()
    }
}

/// Weights combining the three load signals into one score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadWeights {
    /// Score per registered tenant (the LP-cost driver).
    pub tenant: f64,
    /// Score per unfinished job (placement and progress cost).
    pub job: f64,
    /// Score per second of solve-latency EWMA.  Defaults to 0 so planning
    /// stays deterministic across machines; raise it when latency — not
    /// object counts — is the imbalance an operator cares about.
    pub latency: f64,
}

impl Default for LoadWeights {
    fn default() -> Self {
        Self {
            tenant: 1.0,
            job: 0.25,
            latency: 0.0,
        }
    }
}

/// One shard's load score under the given weights.
pub fn shard_score(observation: &ShardObservation, weights: &LoadWeights) -> f64 {
    observation.tenants.len() as f64 * weights.tenant
        + observation.jobs() as f64 * weights.job
        + observation.solve_ewma_secs * weights.latency
}

/// The score one tenant contributes to its shard (what moving it shifts).
/// Latency is a shard-level signal and cannot be attributed to one tenant,
/// so it does not appear here.
pub fn tenant_score(tenant: &TenantObservation, weights: &LoadWeights) -> f64 {
    weights.tenant + tenant.jobs as f64 * weights.job
}

#[cfg(test)]
mod tests {
    use super::*;
    use oef_cluster::ClusterTopology;
    use oef_service::{Command, Response, ServiceConfig};

    #[test]
    fn observations_sample_tenants_jobs_and_tag_handles() {
        let mut service =
            SchedulerService::new(ClusterTopology::paper_cluster(), ServiceConfig::default())
                .unwrap();
        let Response::TenantJoined { tenant } = service.apply(
            Command::TenantJoin {
                name: "alice".into(),
                weight: 1,
                speedup: vec![1.0, 1.2, 1.4],
            },
            0,
        ) else {
            panic!("join failed");
        };
        for _ in 0..2 {
            service.apply(
                Command::SubmitJob {
                    tenant,
                    model: "m".into(),
                    workers: 1,
                    total_work: 1e9,
                },
                0,
            );
        }
        let obs = ShardObservation::from_service(3, &service, 0.5);
        assert_eq!(obs.shard, 3);
        assert_eq!(obs.tenants.len(), 1);
        assert_eq!(obs.jobs(), 2);
        assert_eq!(sharded::decode(obs.tenants[0].handle), (3, tenant));

        let weights = LoadWeights::default();
        assert!((shard_score(&obs, &weights) - 1.5).abs() < 1e-12);
        assert!((tenant_score(&obs.tenants[0], &weights) - 1.5).abs() < 1e-12);
        let latency_aware = LoadWeights {
            latency: 2.0,
            ..weights
        };
        assert!((shard_score(&obs, &latency_aware) - 2.5).abs() < 1e-12);
    }
}
