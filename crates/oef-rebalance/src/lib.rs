//! # oef-rebalance — live cross-shard tenant migration and online rebalancing
//!
//! PR 4's federation places whole tenants once and never moves them, so
//! uneven churn slowly strands load on hot shards: long-lived tenants pile up
//! wherever they happened to land, per-shard LPs grow past the warm-start
//! sweet spot, and the parallel tick's critical path — the *slowest* shard —
//! dominates round throughput.  This crate closes that gap with two pieces:
//!
//! * [`TenantMigrator`] — moves one tenant's **complete** state between two
//!   scheduler shards: speedup profiles, unfinished jobs (ids and progress
//!   preserved), quota usage, and the rounding placer's cumulative deviation
//!   row, so the tenant's allocations continue bit-for-bit as if it had
//!   always lived on the target shard.  A refused install (target full) rolls
//!   the tenant back onto its source shard — a migration can fail, but it can
//!   never lose a tenant.
//! * [`Rebalancer`] — watches per-shard load ([`ShardObservation`]: tenants,
//!   unfinished jobs, solve-latency EWMA), scores imbalance with configurable
//!   [`LoadWeights`], and plans migrations against a pluggable
//!   [`RebalancePolicy`] ([`ThresholdPolicy`] stops once the load spread is
//!   within its threshold; [`GreedyTopK`] always flattens with up to k
//!   moves).  Plans are pure data ([`MigrationPlan`]) — the coordinator in
//!   `oef-shard` executes them and owns the handle-forwarding table that
//!   keeps every pre-migration handle working.
//!
//! Everything here is deterministic: planning is a pure function of the
//! observations and the config, ties break toward the lowest shard index and
//! the smallest handle, so a federation and its restored snapshot plan the
//! same moves.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod load;
mod migrator;
mod policy;
mod rebalancer;

pub use load::{shard_score, tenant_score, LoadWeights, ShardObservation, TenantObservation};
pub use migrator::{MigrateFailure, TenantMigrator};
pub use policy::{
    rebalance_policy_from_name, GreedyTopK, MigrationPlan, PlannedMove, RebalancePolicy,
    ThresholdPolicy,
};
pub use rebalancer::{Rebalancer, RebalancerConfig};
