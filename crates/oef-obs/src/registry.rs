//! Lock-cheap metric primitives and the registry that renders them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`], [`GaugeFamily`]) are
//! `Arc`-backed atomics: the thread that owns the scheduling hot path bumps
//! them with plain atomic stores, while the scrape thread renders a
//! [`Registry`] snapshot without ever blocking the workers.  The only mutex
//! in the crate guards family *registration* and the per-tick wholesale
//! replacement of a [`GaugeFamily`]'s label sets — neither is on the command
//! path.
//!
//! Rendering follows the Prometheus text exposition format v0.0.4: one
//! `# HELP` and `# TYPE` line per family, escaped label values, and the
//! `_bucket`/`_sum`/`_count` triplet (with a `+Inf` bucket) for histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A fully-qualified label set (`name`, `value`) pairs in render order.
pub type Labels = Vec<(String, String)>;

/// Log-spaced latency buckets (10µs … 10s) suitable for LP solve times.
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
];

/// A monotonically increasing integer counter.
///
/// Cloning shares the underlying cell; a handle registered in a [`Registry`]
/// and the handle the worker bumps are the same counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero, not yet attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the count — for mirroring an externally maintained
    /// monotone total (e.g. solver or journal statistics) into the registry.
    /// The caller is responsible for only ever mirroring non-decreasing
    /// values.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: an `f64` that can go up and down (stored as IEEE-754 bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a gauge at `0.0`, not yet attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram: per-bucket atomic counts plus an atomic
/// bit-packed sum, so `observe` is a handful of relaxed atomics and scraping
/// never locks the observer out.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite upper bounds, strictly increasing; the `+Inf` bucket is
    /// implicit at `buckets[bounds.len()]`.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts (`bounds.len() + 1` slots).
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
    /// Most recent exemplar per bucket (`bounds.len() + 1` slots).  Behind a
    /// mutex, but written only by [`Histogram::observe_with_exemplar`] —
    /// i.e. only for *sampled* (1-in-N) observations, never on the plain
    /// `observe` hot path — and read at scrape time.
    exemplars: Mutex<Vec<Option<BucketExemplar>>>,
}

/// The exemplar attached to one histogram bucket: which trace produced a
/// recent observation that landed there (OpenMetrics
/// `# {trace_id="..."} value ts` syntax).
#[derive(Debug, Clone, PartialEq)]
struct BucketExemplar {
    trace_id: String,
    value: f64,
    unix_secs: f64,
}

impl Histogram {
    /// Creates a histogram over the given finite upper bounds (sorted and
    /// de-duplicated; non-finite bounds are dropped — `+Inf` is implicit).
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        bounds.dedup();
        let buckets: Vec<AtomicU64> = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        let exemplars = Mutex::new(vec![None; buckets.len()]);
        Self {
            core: Arc::new(HistogramCore {
                bounds,
                buckets,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
                exemplars,
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &*self.core;
        let idx = core
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        // CAS-add the observation into the bit-packed sum: observers race
        // only with each other (scrapes just read), so the loop is short.
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Records one observation and pins it as the exemplar of the bucket it
    /// lands in, linking the bucket to `trace_id` in the rendered exposition
    /// (`# {trace_id="..."} value ts`).  Meant for *sampled* observations
    /// only — it takes the exemplar mutex, which plain [`Self::observe`]
    /// never does.
    pub fn observe_with_exemplar(&self, v: f64, trace_id: &str) {
        self.observe(v);
        let core = &*self.core;
        let idx = core
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(core.bounds.len());
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        lock(&core.exemplars)[idx] = Some(BucketExemplar {
            trace_id: trace_id.to_string(),
            value: v,
            unix_secs,
        });
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.core.bounds
    }

    /// Quantile estimate (`q` in `[0, 1]`) by nearest rank with linear
    /// interpolation inside the containing bucket; observations that landed
    /// in the `+Inf` bucket report the largest finite bound (the Prometheus
    /// `histogram_quantile` convention).  Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let (cumulative, _, count) = self.snapshot();
        if count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let bounds = &self.core.bounds;
        let mut before = 0u64;
        for (i, cum) in cumulative.iter().enumerate() {
            if *cum >= target {
                if i == bounds.len() {
                    return bounds.last().copied().unwrap_or(0.0);
                }
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                let in_bucket = (cum - before) as f64;
                let frac = (target - before) as f64 / in_bucket;
                return lower + (bounds[i] - lower) * frac;
            }
            before = *cum;
        }
        bounds.last().copied().unwrap_or(0.0)
    }

    /// Cumulative bucket counts (incl. `+Inf` last), sum, count.  The three
    /// reads are not a single atomic snapshot; a scrape racing an `observe`
    /// may see the bucket bump without the sum (or vice versa), which the
    /// exposition format tolerates.
    fn snapshot(&self) -> (Vec<u64>, f64, u64) {
        let mut cumulative = Vec::with_capacity(self.core.buckets.len());
        let mut total = 0u64;
        for bucket in &self.core.buckets {
            total += bucket.load(Ordering::Relaxed);
            cumulative.push(total);
        }
        (cumulative, self.sum(), total)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(DEFAULT_LATENCY_BUCKETS)
    }
}

/// A freshness gauge: the producer stamps it ([`AgeGauge::touch`]) whenever
/// it does its periodic work, and every scrape renders *seconds since the
/// last stamp* — computed at render time, so the value keeps climbing while
/// the producer is stalled.  A plain [`Gauge`] holding "age at sample time"
/// cannot do this: a dead sampler freezes the gauge at whatever small value
/// it last wrote, which is exactly the failure the gauge exists to expose.
///
/// A fresh handle counts from its creation, so a worker that never produces
/// a single sample is just as visible as one that died mid-flight.
#[derive(Clone, Debug)]
pub struct AgeGauge {
    anchor: Arc<Instant>,
    /// Seconds after `anchor` of the most recent `touch`, as `f64` bits.
    stamp_bits: Arc<AtomicU64>,
}

impl AgeGauge {
    /// Creates a gauge stamped "now", not yet attached to any registry.
    pub fn new() -> Self {
        Self {
            anchor: Arc::new(Instant::now()),
            stamp_bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Marks the producer as alive right now.
    pub fn touch(&self) {
        self.stamp_bits.store(
            self.anchor.elapsed().as_secs_f64().to_bits(),
            Ordering::Relaxed,
        );
    }

    /// Seconds since the most recent [`Self::touch`] (or creation).
    pub fn age_seconds(&self) -> f64 {
        let stamp = f64::from_bits(self.stamp_bits.load(Ordering::Relaxed));
        (self.anchor.elapsed().as_secs_f64() - stamp).max(0.0)
    }
}

impl Default for AgeGauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A gauge family whose label sets change over time (e.g. one series per
/// live tenant): the sampler replaces the entire set each tick, so series
/// for departed tenants disappear instead of going stale.
#[derive(Clone, Debug, Default)]
pub struct GaugeFamily {
    series: Arc<Mutex<Vec<(Labels, f64)>>>,
}

impl GaugeFamily {
    /// Creates an empty family, not yet attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces every series in the family.
    pub fn replace(&self, series: Vec<(Labels, f64)>) {
        *lock(&self.series) = series;
    }

    /// Sets (or inserts) the single series with exactly `labels` — the
    /// incremental alternative to [`Self::replace`] for samplers that know
    /// which few series actually changed this tick.
    pub fn update(&self, labels: Labels, value: f64) {
        let mut series = lock(&self.series);
        match series.iter_mut().find(|(l, _)| *l == labels) {
            Some(slot) => slot.1 = value,
            None => series.push((labels, value)),
        }
    }

    /// Drops the series with exactly `labels` (a departed tenant's series
    /// disappears from the next scrape immediately).  Returns whether a
    /// series was removed.
    pub fn remove(&self, labels: &[(String, String)]) -> bool {
        let mut series = lock(&self.series);
        let before = series.len();
        series.retain(|(l, _)| l != labels);
        series.len() != before
    }

    /// Number of live series.
    pub fn len(&self) -> usize {
        lock(&self.series).len()
    }

    /// Whether the family currently has no series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current series (label set, value) pairs.
    pub fn snapshot(&self) -> Vec<(Labels, f64)> {
        lock(&self.series).clone()
    }
}

/// A counter family whose label sets change over time (e.g. one series per
/// exposed tenant): values are monotone per series, and series can be
/// dropped when their owner departs — the reader treats a disappearing
/// series like any counter reset.
#[derive(Clone, Debug, Default)]
pub struct CounterFamily {
    series: Arc<Mutex<Vec<(Labels, f64)>>>,
}

impl CounterFamily {
    /// Creates an empty family, not yet attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the series with exactly `labels`, inserting it at
    /// `delta` when absent.  Negative or non-finite deltas are ignored —
    /// counters never move backwards.
    pub fn add(&self, labels: Labels, delta: f64) {
        if !delta.is_finite() || delta < 0.0 {
            return;
        }
        let mut series = lock(&self.series);
        match series.iter_mut().find(|(l, _)| *l == labels) {
            Some(slot) => slot.1 += delta,
            None => series.push((labels, delta)),
        }
    }

    /// Drops the series with exactly `labels` (an evicted tenant's series
    /// disappears from the next scrape).  Returns whether a series was
    /// removed.
    pub fn remove(&self, labels: &[(String, String)]) -> bool {
        self.take(labels).is_some()
    }

    /// Drops the series with exactly `labels` and returns its final value,
    /// so the caller can conserve it elsewhere (e.g. fold a demoted
    /// tenant's count into an `other` bucket).
    pub fn take(&self, labels: &[(String, String)]) -> Option<f64> {
        let mut series = lock(&self.series);
        let at = series.iter().position(|(l, _)| l == labels)?;
        Some(series.swap_remove(at).1)
    }

    /// Number of live series.
    pub fn len(&self) -> usize {
        lock(&self.series).len()
    }

    /// Whether the family currently has no series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current series (label set, value) pairs.
    pub fn snapshot(&self) -> Vec<(Labels, f64)> {
        lock(&self.series).clone()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

enum Series {
    Counter(Labels, Counter),
    Gauge(Labels, Gauge),
    Age(Labels, AgeGauge),
    Histogram(Labels, Histogram),
    GaugeSet(Labels, GaugeFamily),
    CounterSet(Labels, CounterFamily),
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    series: Vec<Series>,
}

/// The set of metric families one `/metrics` endpoint serves.  Cloning is
/// shallow: every clone renders the same families, so the HTTP listener and
/// the instrumented cores share one registry without further plumbing.
#[derive(Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<Vec<Family>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) `counter` under `name{labels}`.
    /// Re-registering the same name + label set replaces the handle — that
    /// makes attach idempotent across `Restore`, which rebuilds cores with
    /// fresh handles.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) {
        self.register(name, help, "counter", labels, |l| {
            Series::Counter(l, counter.clone())
        });
    }

    /// Creates and registers a counter in one step.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let counter = Counter::new();
        self.register_counter(name, help, labels, &counter);
        counter
    }

    /// Registers (or re-registers) `gauge` under `name{labels}`.
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.register(name, help, "gauge", labels, |l| {
            Series::Gauge(l, gauge.clone())
        });
    }

    /// Creates and registers a gauge in one step.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let gauge = Gauge::new();
        self.register_gauge(name, help, labels, &gauge);
        gauge
    }

    /// Registers (or re-registers) `age` under `name{labels}` — rendered as
    /// a gauge whose value is recomputed at scrape time (see [`AgeGauge`]).
    pub fn register_age_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        age: &AgeGauge,
    ) {
        self.register(name, help, "gauge", labels, |l| Series::Age(l, age.clone()));
    }

    /// Creates and registers an [`AgeGauge`] in one step.
    pub fn age_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> AgeGauge {
        let age = AgeGauge::new();
        self.register_age_gauge(name, help, labels, &age);
        age
    }

    /// Registers (or re-registers) `histogram` under `name{labels}`.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: &Histogram,
    ) {
        self.register(name, help, "histogram", labels, |l| {
            Series::Histogram(l, histogram.clone())
        });
    }

    /// Creates and registers a histogram over `bounds` in one step.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let histogram = Histogram::new(bounds);
        self.register_histogram(name, help, labels, &histogram);
        histogram
    }

    /// Creates and registers a dynamic-label gauge family partition.
    ///
    /// `labels` is the partition key: it identifies this handle within the
    /// family (so several owners — e.g. shards — can each hold their own
    /// partition of one family) and is prepended to the labels of every
    /// series supplied via [`GaugeFamily::replace`].
    pub fn gauge_family(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeFamily {
        let family = GaugeFamily::new();
        let handle = family.clone();
        self.register(name, help, "gauge", labels, move |base| {
            Series::GaugeSet(base, handle)
        });
        family
    }

    /// Creates and registers a dynamic-label *counter* family partition —
    /// same partitioning contract as [`Registry::gauge_family`], rendered
    /// with `TYPE counter`.
    pub fn counter_family(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterFamily {
        let family = CounterFamily::new();
        let handle = family.clone();
        self.register(name, help, "counter", labels, move |base| {
            Series::CounterSet(base, handle)
        });
        family
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce(Labels) -> Series,
    ) {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        for (label, _) in labels {
            assert!(valid_label_name(label), "invalid label name `{label}`");
        }
        let labels: Labels = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        let mut families = lock(&self.families);
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert_eq!(
                    family.kind, kind,
                    "metric `{name}` re-registered with a different type"
                );
                family
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("family was just pushed")
            }
        };
        let series = make(labels);
        let same_identity = |existing: &Series| match (existing, &series) {
            (Series::Counter(a, _), Series::Counter(b, _))
            | (Series::Gauge(a, _), Series::Gauge(b, _))
            | (Series::Age(a, _), Series::Age(b, _))
            | (Series::Histogram(a, _), Series::Histogram(b, _))
            | (Series::GaugeSet(a, _), Series::GaugeSet(b, _))
            | (Series::CounterSet(a, _), Series::CounterSet(b, _)) => a == b,
            _ => false,
        };
        match family.series.iter_mut().find(|s| same_identity(s)) {
            Some(slot) => *slot = series,
            None => family.series.push(series),
        }
    }

    /// Current values of every series in the family `name`, with their full
    /// label sets — the read side the `/healthz` JSON body uses to surface a
    /// handful of gauges without a full scrape.  Histograms contribute
    /// nothing (they have no single value); [`AgeGauge`] series report their
    /// read-time age.
    pub fn values(&self, name: &str) -> Vec<(Labels, f64)> {
        let families = lock(&self.families);
        let Some(family) = families.iter().find(|f| f.name == name) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for series in &family.series {
            match series {
                Series::Counter(labels, counter) => {
                    out.push((labels.clone(), counter.value() as f64));
                }
                Series::Gauge(labels, gauge) => out.push((labels.clone(), gauge.value())),
                Series::Age(labels, age) => out.push((labels.clone(), age.age_seconds())),
                Series::GaugeSet(base, set) => {
                    for (labels, value) in set.snapshot() {
                        let mut merged = base.clone();
                        merged.extend(labels);
                        out.push((merged, value));
                    }
                }
                Series::CounterSet(base, set) => {
                    for (labels, value) in set.snapshot() {
                        let mut merged = base.clone();
                        merged.extend(labels);
                        out.push((merged, value));
                    }
                }
                Series::Histogram(..) => {}
            }
        }
        out
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for family in lock(&self.families).iter() {
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {}\n",
                family.name,
                escape_help(&family.help),
                family.name,
                family.kind
            ));
            for series in &family.series {
                match series {
                    Series::Counter(labels, counter) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(labels),
                            counter.value()
                        ));
                    }
                    Series::Gauge(labels, gauge) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(labels),
                            fmt_value(gauge.value())
                        ));
                    }
                    Series::Age(labels, age) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(labels),
                            fmt_value(age.age_seconds())
                        ));
                    }
                    Series::GaugeSet(base, set) => {
                        for (labels, value) in set.snapshot() {
                            let mut merged = base.clone();
                            merged.extend(labels);
                            out.push_str(&format!(
                                "{}{} {}\n",
                                family.name,
                                render_labels(&merged),
                                fmt_value(value)
                            ));
                        }
                    }
                    Series::CounterSet(base, set) => {
                        for (labels, value) in set.snapshot() {
                            let mut merged = base.clone();
                            merged.extend(labels);
                            out.push_str(&format!(
                                "{}{} {}\n",
                                family.name,
                                render_labels(&merged),
                                fmt_value(value)
                            ));
                        }
                    }
                    Series::Histogram(labels, histogram) => {
                        render_histogram(&mut out, &family.name, labels, histogram);
                    }
                }
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &Labels, histogram: &Histogram) {
    let (cumulative, sum, count) = histogram.snapshot();
    let exemplars = lock(&histogram.core.exemplars).clone();
    let mut with_le = |le: &str, value: u64, exemplar: Option<&BucketExemplar>| {
        let mut labels = labels.clone();
        labels.push(("le".to_string(), le.to_string()));
        out.push_str(&format!("{name}_bucket{} {value}", render_labels(&labels)));
        if let Some(e) = exemplar {
            out.push_str(&format!(
                " # {{trace_id=\"{}\"}} {} {}",
                escape_label_value(&e.trace_id),
                fmt_value(e.value),
                fmt_value(e.unix_secs),
            ));
        }
        out.push('\n');
    };
    for (i, (bound, cum)) in histogram.bounds().iter().zip(&cumulative).enumerate() {
        with_le(&fmt_value(*bound), *cum, exemplars[i].as_ref());
    }
    with_le("+Inf", count, exemplars.last().and_then(|e| e.as_ref()));
    out.push_str(&format!(
        "{name}_sum{} {}\n{name}_count{} {count}\n",
        render_labels(labels),
        fmt_value(sum),
        render_labels(labels),
    ));
}

fn render_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

/// Escapes a label value per the exposition format: backslash, double quote
/// and line feed.
pub fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes HELP text (backslash and line feed only; quotes stay literal).
pub fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Formats a sample value: special IEEE values use the exposition spellings.
pub fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name != "le"
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let registry = Registry::new();
        let c = registry.counter("oef_test_total", "A test counter.", &[("shard", "0")]);
        c.add(3);
        let g = registry.gauge("oef_depth", "A depth.", &[]);
        g.set(2.5);
        let text = registry.render();
        assert!(text.contains("# HELP oef_test_total A test counter.\n"));
        assert!(text.contains("# TYPE oef_test_total counter\n"));
        assert!(text.contains("oef_test_total{shard=\"0\"} 3\n"));
        assert!(text.contains("# TYPE oef_depth gauge\n"));
        assert!(text.contains("oef_depth 2.5\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_with_inf() {
        let registry = Registry::new();
        let h = registry.histogram("oef_lat_seconds", "Latency.", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = registry.render();
        assert!(text.contains("oef_lat_seconds_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("oef_lat_seconds_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("oef_lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("oef_lat_seconds_count 3\n"));
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("oef_lat_seconds_sum"))
            .expect("sum line");
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((sum - 5.55).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::new(DEFAULT_LATENCY_BUCKETS);
        for i in 1..=100 {
            h.observe(i as f64 / 1000.0);
        }
        assert!((h.quantile(0.5) - 0.050).abs() < 2e-3);
        assert!((h.quantile(0.99) - 0.099).abs() < 2e-3);
        assert_eq!(h.count(), 100);
        // Everything past the largest bound reports the largest finite bound.
        let h = Histogram::new(&[1.0]);
        h.observe(50.0);
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-12);
        // Empty histogram quantiles are zero.
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn age_gauge_climbs_until_touched_and_renders_at_scrape_time() {
        let registry = Registry::new();
        let age = registry.age_gauge("oef_sample_age_seconds", "Sample age.", &[("shard", "0")]);
        // Freshly created: age is near zero but non-negative.
        assert!(age.age_seconds() >= 0.0);
        std::thread::sleep(std::time::Duration::from_millis(15));
        let grown = age.age_seconds();
        assert!(grown >= 0.010, "age must climb while untouched: {grown}");
        age.touch();
        assert!(age.age_seconds() < grown, "touch must reset the age");
        // The rendered value is the render-time age, not a stored sample.
        let text = registry.render();
        let line = text
            .lines()
            .find(|l| l.starts_with("oef_sample_age_seconds{"))
            .expect("age series");
        let value: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((0.0..10.0).contains(&value), "unexpected age {value}");
    }

    #[test]
    fn gauge_family_replacement_drops_departed_series() {
        let registry = Registry::new();
        let family = registry.gauge_family("oef_tenant_allocation", "Per-tenant allocation.", &[]);
        family.replace(vec![
            (vec![("tenant".into(), "alice".into())], 1.0),
            (vec![("tenant".into(), "bob".into())], 2.0),
        ]);
        assert!(registry
            .render()
            .contains("oef_tenant_allocation{tenant=\"bob\"} 2\n"));
        family.replace(vec![(vec![("tenant".into(), "alice".into())], 1.5)]);
        let text = registry.render();
        assert!(text.contains("oef_tenant_allocation{tenant=\"alice\"} 1.5\n"));
        assert!(!text.contains("bob"));
    }

    #[test]
    fn gauge_family_partitions_by_base_labels() {
        let registry = Registry::new();
        let shard0 = registry.gauge_family("oef_alloc", "Allocation.", &[("shard", "0")]);
        let shard1 = registry.gauge_family("oef_alloc", "Allocation.", &[("shard", "1")]);
        shard0.replace(vec![(vec![("tenant".into(), "1".into())], 1.0)]);
        shard1.replace(vec![(vec![("tenant".into(), "2".into())], 2.0)]);
        let text = registry.render();
        // Each shard owns its partition: neither replace() clobbers the other,
        // the partition key prefixes every series, and the family header
        // appears exactly once.
        assert!(text.contains("oef_alloc{shard=\"0\",tenant=\"1\"} 1\n"));
        assert!(text.contains("oef_alloc{shard=\"1\",tenant=\"2\"} 2\n"));
        assert_eq!(text.matches("# TYPE oef_alloc").count(), 1);
        // Re-registering the same partition replaces the handle.
        let again = registry.gauge_family("oef_alloc", "Allocation.", &[("shard", "0")]);
        again.replace(vec![(vec![("tenant".into(), "3".into())], 5.0)]);
        let text = registry.render();
        assert!(text.contains("oef_alloc{shard=\"0\",tenant=\"3\"} 5\n"));
        assert!(!text.contains("tenant=\"1\""));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .gauge_family("oef_esc", "Escapes \\ and\nnewlines.", &[])
            .replace(vec![(vec![("tenant".into(), "a\\b\"c\nd".into())], 1.0)]);
        let text = registry.render();
        assert!(text.contains("# HELP oef_esc Escapes \\\\ and\\nnewlines.\n"));
        assert!(text.contains("oef_esc{tenant=\"a\\\\b\\\"c\\nd\"} 1\n"));
    }

    #[test]
    fn reregistration_replaces_the_handle() {
        let registry = Registry::new();
        let first = registry.counter("oef_x_total", "x", &[]);
        first.add(7);
        let second = Counter::new();
        second.add(2);
        registry.register_counter("oef_x_total", "x", &[], &second);
        let text = registry.render();
        assert!(text.contains("oef_x_total 2\n"));
        assert_eq!(text.matches("# TYPE oef_x_total").count(), 1);
    }

    #[test]
    fn exemplars_render_on_their_bucket_line() {
        let registry = Registry::new();
        let h = registry.histogram(
            "oef_lat_seconds",
            "Latency.",
            &[("shard", "0")],
            &[0.1, 1.0],
        );
        h.observe(0.05);
        h.observe_with_exemplar(0.5, "00000000000000ff");
        let text = registry.render();
        let line = text
            .lines()
            .find(|l| l.contains("le=\"1\""))
            .expect("le=1 bucket");
        assert!(
            line.contains("# {trace_id=\"00000000000000ff\"} 0.5 "),
            "{line}"
        );
        // The untouched buckets carry no exemplar.
        let line = text.lines().find(|l| l.contains("le=\"0.1\"")).unwrap();
        assert!(!line.contains('#'), "{line}");
        // A later exemplar in the same bucket replaces the pinned one.
        h.observe_with_exemplar(0.7, "0000000000000a01");
        let text = registry.render();
        assert!(text.contains("trace_id=\"0000000000000a01\"} 0.7"));
        assert!(!text.contains("00000000000000ff"));
    }

    #[test]
    fn gauge_family_update_and_remove_are_incremental() {
        let family = GaugeFamily::new();
        let alice: Labels = vec![("tenant".into(), "alice".into())];
        let bob: Labels = vec![("tenant".into(), "bob".into())];
        family.update(alice.clone(), 1.0);
        family.update(bob.clone(), 2.0);
        assert_eq!(family.len(), 2);
        family.update(alice.clone(), 1.5);
        assert_eq!(family.len(), 2, "update in place, no duplicate series");
        assert!(family.remove(&bob));
        assert!(!family.remove(&bob), "second remove is a no-op");
        assert_eq!(family.snapshot(), vec![(alice, 1.5)]);
        assert!(!family.is_empty());
    }

    #[test]
    fn counter_family_is_monotone_bounded_and_renders_as_counter() {
        let registry = Registry::new();
        let family = registry.counter_family(
            "oef_tenant_solve_cost",
            "Attributed solve cost.",
            &[("shard", "0")],
        );
        let alice: Labels = vec![("tenant".into(), "a1".into())];
        let other: Labels = vec![("tenant".into(), "other".into())];
        family.add(alice.clone(), 10.0);
        family.add(alice.clone(), 5.0);
        family.add(other.clone(), 1.0);
        family.add(alice.clone(), -3.0); // ignored: counters never regress
        family.add(alice.clone(), f64::NAN); // ignored
        assert_eq!(family.len(), 2);

        let rendered = registry.render();
        assert!(
            rendered.contains("# TYPE oef_tenant_solve_cost counter"),
            "{rendered}"
        );
        assert!(
            rendered.contains("oef_tenant_solve_cost{shard=\"0\",tenant=\"a1\"} 15"),
            "{rendered}"
        );
        crate::parse(&rendered).expect("strict parser accepts counter families");

        assert!(family.remove(&alice));
        let values = registry.values("oef_tenant_solve_cost");
        assert_eq!(values.len(), 1, "evicted series disappears immediately");
        assert_eq!(values[0].1, 1.0);
    }

    #[test]
    fn registry_values_read_current_series() {
        let registry = Registry::new();
        registry
            .gauge("oef_uptime_seconds", "Uptime.", &[])
            .set(12.5);
        registry.counter("oef_cmds_total", "Commands.", &[]).add(3);
        registry
            .gauge_family("oef_alloc", "Alloc.", &[("shard", "0")])
            .update(vec![("tenant".into(), "a".into())], 2.0);
        registry.histogram("oef_h", "H.", &[], &[1.0]).observe(0.5);
        assert_eq!(registry.values("oef_uptime_seconds"), vec![(vec![], 12.5)]);
        assert_eq!(registry.values("oef_cmds_total"), vec![(vec![], 3.0)]);
        let alloc = registry.values("oef_alloc");
        assert_eq!(alloc.len(), 1);
        assert_eq!(alloc[0].0.len(), 2, "partition labels merge in");
        assert_eq!(alloc[0].1, 2.0);
        assert!(registry.values("oef_h").is_empty(), "histograms skipped");
        assert!(registry.values("oef_missing").is_empty());
    }

    #[test]
    fn special_values_render_with_exposition_spellings() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(0.25), "0.25");
    }
}
