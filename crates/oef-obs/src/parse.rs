//! Strict parser for the Prometheus text exposition format — the in-repo
//! stand-in for `promtool check metrics` that tests and the CI smoke step
//! run against everything the encoder produces.
//!
//! "Strict" means structural problems are errors, not warnings: samples
//! without a preceding `# TYPE`, malformed label syntax, duplicate series,
//! negative or non-finite counters, and histograms whose buckets are
//! non-cumulative, lack `+Inf`, or disagree with their `_count` all fail the
//! parse with a line number.

use std::collections::HashSet;
use std::fmt;

/// A parse or validation failure, with the 1-based line it was found on
/// (line 0 for whole-exposition invariant failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 = exposition-wide invariant).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Declared family type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Bucketed histogram (`_bucket`/`_sum`/`_count`).
    Histogram,
    /// Explicitly untyped.
    Untyped,
}

/// An OpenMetrics exemplar attached to a sample
/// (`... <value> # {trace_id="..."} <exemplar value> [timestamp]`).
/// Only histogram `_bucket` samples may carry one.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Exemplar label pairs in source order (typically just `trace_id`).
    pub labels: Vec<(String, String)>,
    /// The exemplar's observed value.
    pub value: f64,
    /// Optional unix timestamp (seconds).
    pub timestamp: Option<f64>,
}

impl Exemplar {
    /// The value of exemplar label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One sample line: fully-suffixed name, label set, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The sample name as written (histograms: `<family>_bucket` etc.).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
    /// Attached exemplar, if the line carried one.
    pub exemplar: Option<Exemplar>,
}

impl Sample {
    /// The value of label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One metric family: `# TYPE` metadata plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Family (base) name.
    pub name: String,
    /// `# HELP` text, if present.
    pub help: Option<String>,
    /// Declared kind.
    pub kind: MetricKind,
    /// All samples attributed to the family.
    pub samples: Vec<Sample>,
}

/// A parsed, validated exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Families in source order.
    pub families: Vec<MetricFamily>,
}

impl Exposition {
    /// Looks up a family by base name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The value of the sample `name{labels ⊇ labels}` (labels are matched
    /// as a subset so callers can ignore incidental labels).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.families
            .iter()
            .flat_map(|f| &f.samples)
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
            .map(|s| s.value)
    }
}

/// Parses and validates `text`.
///
/// # Errors
///
/// Returns the first structural problem found, with its line number.
pub fn parse(text: &str) -> Result<Exposition, ParseError> {
    let mut families: Vec<FamilyAcc> = Vec::new();
    let mut seen_series: HashSet<String> = HashSet::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
                if !valid_metric_name(name) {
                    return Err(err(format!("invalid metric name `{name}` in HELP")));
                }
                let family = family_entry(&mut families, name);
                if family.help.is_some() {
                    return Err(err(format!("duplicate HELP for `{name}`")));
                }
                family.help = Some(unescape_help(help));
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if parts.next().is_some() {
                    return Err(err(format!("trailing tokens after TYPE for `{name}`")));
                }
                if !valid_metric_name(name) {
                    return Err(err(format!("invalid metric name `{name}` in TYPE")));
                }
                let kind = match kind {
                    "counter" => MetricKind::Counter,
                    "gauge" => MetricKind::Gauge,
                    "histogram" => MetricKind::Histogram,
                    "untyped" => MetricKind::Untyped,
                    other => return Err(err(format!("unknown metric type `{other}`"))),
                };
                let family = family_entry(&mut families, name);
                if !family.samples.is_empty() {
                    return Err(err(format!("TYPE for `{name}` after its samples")));
                }
                if family.kind != MetricKind::Untyped || family.name_had_type {
                    return Err(err(format!("duplicate TYPE for `{name}`")));
                }
                family.kind = kind;
                family.name_had_type = true;
            }
            // Other comments are legal and ignored.
            continue;
        }

        let sample = parse_sample(line).map_err(&err)?;
        let family_name = families
            .iter()
            .rev()
            .find(|f| {
                f.name_had_type
                    && (sample.name == f.name
                        || (f.kind == MetricKind::Histogram
                            && [
                                format!("{}_bucket", f.name),
                                format!("{}_sum", f.name),
                                format!("{}_count", f.name),
                            ]
                            .contains(&sample.name)))
            })
            .map(|f| f.name.clone())
            .ok_or_else(|| err(format!("sample `{}` has no preceding # TYPE", sample.name)))?;

        let mut key = sample.name.clone();
        for (k, v) in &sample.labels {
            key.push_str(&format!("\u{1}{k}\u{2}{v}"));
        }
        if !seen_series.insert(key) {
            return Err(err(format!(
                "duplicate sample `{}` with identical labels",
                sample.name
            )));
        }
        let family = family_entry(&mut families, &family_name);
        if sample.exemplar.is_some()
            && !(family.kind == MetricKind::Histogram
                && sample.name == format!("{family_name}_bucket"))
        {
            return Err(err(format!(
                "exemplar on `{}`: exemplars are only allowed on histogram `_bucket` samples",
                sample.name
            )));
        }
        if family.kind == MetricKind::Counter && (sample.value.is_nan() || sample.value < 0.0) {
            return Err(err(format!(
                "counter `{}` has negative or NaN value {}",
                sample.name, sample.value
            )));
        }
        family.samples.push(sample);
    }

    for family in &families {
        if family.kind == MetricKind::Histogram {
            validate_histogram(family)?;
        }
    }

    Ok(Exposition {
        families: families
            .into_iter()
            .map(|f| MetricFamily {
                name: f.name,
                help: f.help,
                kind: f.kind,
                samples: f.samples,
            })
            .collect(),
    })
}

/// Mutable family accumulator (tracks whether TYPE was explicit).
struct FamilyAcc {
    name: String,
    help: Option<String>,
    kind: MetricKind,
    name_had_type: bool,
    samples: Vec<Sample>,
}

fn family_entry<'a>(families: &'a mut Vec<FamilyAcc>, name: &str) -> &'a mut FamilyAcc {
    if let Some(i) = families.iter().position(|f| f.name == name) {
        return &mut families[i];
    }
    families.push(FamilyAcc {
        name: name.to_string(),
        help: None,
        kind: MetricKind::Untyped,
        name_had_type: false,
        samples: Vec::new(),
    });
    families.last_mut().expect("family was just pushed")
}

/// One histogram label-group accumulated during validation: `(le, value)`
/// buckets plus its `_sum` / `_count` samples.
struct HistogramGroup {
    labels: Vec<(String, String)>,
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

fn validate_histogram(family: &FamilyAcc) -> Result<(), ParseError> {
    let invariant = |message: String| ParseError { line: 0, message };
    // Group bucket/sum/count samples by their non-`le` label sets.
    let mut groups: Vec<HistogramGroup> = Vec::new();
    let bucket_name = format!("{}_bucket", family.name);
    let sum_name = format!("{}_sum", family.name);
    let count_name = format!("{}_count", family.name);
    for sample in &family.samples {
        let mut labels = sample.labels.clone();
        labels.retain(|(k, _)| k != "le");
        let group = match groups.iter_mut().find(|g| g.labels == labels) {
            Some(group) => group,
            None => {
                groups.push(HistogramGroup {
                    labels,
                    buckets: Vec::new(),
                    sum: None,
                    count: None,
                });
                groups.last_mut().expect("group was just pushed")
            }
        };
        if sample.name == bucket_name {
            let le = sample.label("le").ok_or_else(|| {
                invariant(format!("`{bucket_name}` sample without an `le` label"))
            })?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| invariant(format!("`{bucket_name}` has unparsable le=\"{le}\"")))?
            };
            group.buckets.push((bound, sample.value));
        } else if sample.name == sum_name {
            group.sum = Some(sample.value);
        } else if sample.name == count_name {
            group.count = Some(sample.value);
        } else {
            return Err(invariant(format!(
                "histogram `{}` has stray sample `{}`",
                family.name, sample.name
            )));
        }
    }
    if groups.is_empty() {
        return Err(invariant(format!(
            "histogram `{}` has no samples",
            family.name
        )));
    }
    for mut group in groups {
        let whos = if group.labels.is_empty() {
            family.name.clone()
        } else {
            let rendered: Vec<String> = group
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            format!("{}{{{}}}", family.name, rendered.join(","))
        };
        group
            .buckets
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let Some(&(last_bound, inf_count)) = group.buckets.last() else {
            return Err(invariant(format!("histogram `{whos}` has no buckets")));
        };
        if last_bound != f64::INFINITY {
            return Err(invariant(format!(
                "histogram `{whos}` is missing its `+Inf` bucket"
            )));
        }
        for window in group.buckets.windows(2) {
            if window[1].1 < window[0].1 {
                return Err(invariant(format!(
                    "histogram `{whos}` buckets are not cumulative (le=\"{}\" {} > le=\"{}\" {})",
                    crate::registry::fmt_value(window[0].0),
                    window[0].1,
                    crate::registry::fmt_value(window[1].0),
                    window[1].1,
                )));
            }
        }
        let count = group
            .count
            .ok_or_else(|| invariant(format!("histogram `{whos}` is missing `_count`")))?;
        group
            .sum
            .ok_or_else(|| invariant(format!("histogram `{whos}` is missing `_sum`")))?;
        if count != inf_count {
            return Err(invariant(format!(
                "histogram `{whos}`: `_count` {count} disagrees with `+Inf` bucket {inf_count}"
            )));
        }
    }
    Ok(())
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|b| *b == b'{' || b.is_ascii_whitespace())
        .unwrap_or(bytes.len());
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid sample name `{name}`"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(inner) = rest.strip_prefix('{') {
        let (parsed, after) = parse_labels(inner)?;
        labels = parsed;
        rest = after;
    }
    // An exemplar starts at the first `#` after the sample's own labels —
    // safe to split on because the label block (where `#` could appear
    // inside a quoted value) has already been consumed, and a bare value
    // never contains `#`.
    let (value_part, exemplar_part) = match rest.find('#') {
        Some(i) => (&rest[..i], Some(&rest[i + 1..])),
        None => (rest, None),
    };
    let value_str = value_part.trim();
    if value_str.is_empty() {
        return Err(format!("sample `{name}` has no value"));
    }
    if value_str.split_whitespace().count() != 1 {
        return Err(format!(
            "sample `{name}` has trailing tokens after its value (timestamps are not accepted)"
        ));
    }
    let value = parse_value(value_str)
        .ok_or_else(|| format!("sample `{name}` has unparsable value `{value_str}`"))?;
    let exemplar = match exemplar_part {
        Some(part) => Some(parse_exemplar(part, name)?),
        None => None,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
        exemplar,
    })
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse::<f64>().ok(),
    }
}

/// Parses the OpenMetrics exemplar tail of a sample line (everything after
/// the `#`): `{labels} value [timestamp]`.
fn parse_exemplar(part: &str, sample: &str) -> Result<Exemplar, String> {
    let part = part.trim_start();
    let inner = part
        .strip_prefix('{')
        .ok_or_else(|| format!("exemplar on `{sample}` does not start with a `{{label}}` block"))?;
    let (labels, after) = parse_labels(inner)?;
    if labels.is_empty() {
        return Err(format!("exemplar on `{sample}` has an empty label set"));
    }
    let mut tokens = after.split_whitespace();
    let value = tokens
        .next()
        .and_then(parse_value)
        .ok_or_else(|| format!("exemplar on `{sample}` has no parsable value"))?;
    let timestamp = match tokens.next() {
        Some(token) => Some(
            token
                .parse::<f64>()
                .map_err(|_| format!("exemplar on `{sample}` has unparsable timestamp"))?,
        ),
        None => None,
    };
    if tokens.next().is_some() {
        return Err(format!(
            "exemplar on `{sample}` has trailing tokens after its timestamp"
        ));
    }
    Ok(Exemplar {
        labels,
        value,
        timestamp,
    })
}

/// Parses `name="value",...}` (the leading `{` already consumed); returns
/// the labels and the remainder after the closing brace.
/// Parsed label pairs plus the remainder of the line after the closing brace.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

fn parse_labels(mut rest: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without `=`".to_string())?;
        let name = rest[..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("invalid label name `{name}`"));
        }
        rest = &rest[eq + 1..];
        let inner = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("label `{name}` value is not quoted"))?;
        let (value, after) = parse_quoted(inner, name)?;
        if labels.iter().any(|(k, _)| k == name) {
            return Err(format!("duplicate label `{name}`"));
        }
        labels.push((name.to_string(), value));
        rest = after.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.starts_with('}') {
            return Err(format!("expected `,` or `}}` after label `{name}`"));
        }
    }
}

/// Parses an escaped label value up to its closing quote.
fn parse_quoted<'a>(rest: &'a str, label: &str) -> Result<(String, &'a str), String> {
    let mut value = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((value, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => value.push('\\'),
                Some((_, '"')) => value.push('"'),
                Some((_, 'n')) => value.push('\n'),
                Some((_, other)) => {
                    return Err(format!("invalid escape `\\{other}` in label `{label}`"))
                }
                None => return Err(format!("unterminated escape in label `{label}`")),
            },
            other => value.push(other),
        }
    }
    Err(format!("unterminated value for label `{label}`"))
}

fn unescape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    let mut chars = help.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_exposition_parses_to_zero_families() {
        let exposition = parse("").expect("empty input is valid");
        assert!(exposition.families.is_empty());
        assert!(parse("\n\n")
            .expect("blank lines are valid")
            .families
            .is_empty());
    }

    #[test]
    fn round_trips_the_encoder() {
        let registry = crate::Registry::new();
        let c = registry.counter("oef_cmds_total", "Commands.", &[("shard", "0")]);
        c.add(41);
        let h = registry.histogram(
            "oef_solve_seconds",
            "Solve.",
            &[("shard", "0")],
            &[0.01, 0.1],
        );
        h.observe(0.02);
        registry
            .gauge_family("oef_tenant_allocation", "Alloc.", &[])
            .replace(vec![(vec![("tenant".into(), "a\"b\\c\nd".into())], 2.25)]);
        let exposition = parse(&registry.render()).expect("encoder output must parse");
        assert_eq!(
            exposition.value("oef_cmds_total", &[("shard", "0")]),
            Some(41.0)
        );
        assert_eq!(
            exposition.value("oef_solve_seconds_bucket", &[("le", "+Inf")]),
            Some(1.0)
        );
        // Escaped label values round-trip back to the raw string.
        assert_eq!(
            exposition.value("oef_tenant_allocation", &[("tenant", "a\"b\\c\nd")]),
            Some(2.25)
        );
        assert_eq!(
            exposition.family("oef_solve_seconds").map(|f| f.kind),
            Some(MetricKind::Histogram)
        );
    }

    #[test]
    fn sample_without_type_is_rejected() {
        let err = parse("oef_orphan 1\n").expect_err("untyped sample");
        assert!(err.message.contains("no preceding # TYPE"), "{err}");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let header = "# TYPE oef_x gauge\n";
        for bad in [
            "oef_x{tenant=\"a} 1\n",                // unterminated value
            "oef_x{tenant=a} 1\n",                  // unquoted value
            "oef_x{tenant=\"a\\q\"} 1\n",           // invalid escape
            "oef_x{tenant=\"a\" 1\n",               // missing closing brace
            "oef_x one\n",                          // non-numeric value
            "oef_x 1 1700000000\n",                 // timestamps not accepted
            "oef_x{tenant=\"a\",tenant=\"b\"} 1\n", // duplicate label
        ] {
            let text = format!("{header}{bad}");
            assert!(parse(&text).is_err(), "should reject: {bad:?}");
        }
        assert!(parse("# TYPE oef_x widget\n").is_err(), "unknown type");
    }

    #[test]
    fn exemplars_parse_on_histogram_buckets() {
        let text = "# TYPE oef_h histogram\n\
                    oef_h_bucket{le=\"1\"} 1 # {trace_id=\"00ff\"} 0.5 1700000000.25\n\
                    oef_h_bucket{le=\"+Inf\"} 2 # {trace_id=\"0a01\"} 3\n\
                    oef_h_sum 3.5\noef_h_count 2\n";
        let exposition = parse(text).expect("exemplars on buckets are valid");
        let family = exposition.family("oef_h").unwrap();
        let bucket = &family.samples[0];
        let exemplar = bucket.exemplar.as_ref().expect("first bucket exemplar");
        assert_eq!(exemplar.label("trace_id"), Some("00ff"));
        assert_eq!(exemplar.value, 0.5);
        assert_eq!(exemplar.timestamp, Some(1700000000.25));
        let inf = family.samples[1].exemplar.as_ref().expect("inf exemplar");
        assert_eq!(inf.timestamp, None, "timestamp is optional");
        assert!(family.samples[2].exemplar.is_none());
    }

    #[test]
    fn exemplars_round_trip_the_encoder() {
        let registry = crate::Registry::new();
        let h = registry.histogram(
            "oef_solve_seconds",
            "Solve.",
            &[("shard", "0")],
            &[0.01, 0.1],
        );
        h.observe(0.02);
        h.observe_with_exemplar(0.05, "000000000000beef");
        let text = registry.render();
        let exposition = parse(&text).expect("exemplar output must parse strictly");
        let family = exposition.family("oef_solve_seconds").unwrap();
        let with_exemplar: Vec<_> = family
            .samples
            .iter()
            .filter(|s| s.exemplar.is_some())
            .collect();
        assert_eq!(with_exemplar.len(), 1, "one bucket pinned an exemplar");
        let exemplar = with_exemplar[0].exemplar.as_ref().unwrap();
        assert_eq!(exemplar.label("trace_id"), Some("000000000000beef"));
        assert_eq!(exemplar.value, 0.05);
        assert!(exemplar.timestamp.is_some());
    }

    #[test]
    fn exemplars_off_histogram_buckets_are_rejected() {
        // Gauge with an exemplar.
        let text = "# TYPE oef_g gauge\noef_g 1 # {trace_id=\"aa\"} 1\n";
        let err = parse(text).expect_err("gauge exemplar");
        assert!(err.message.contains("only allowed on histogram"), "{err}");
        // Counter with an exemplar.
        let text = "# TYPE oef_c counter\noef_c 1 # {trace_id=\"aa\"} 1\n";
        assert!(parse(text).is_err());
        // Histogram `_sum`/`_count` with an exemplar.
        for bad in [
            "oef_h_sum 1 # {trace_id=\"aa\"} 1\n",
            "oef_h_count 1 # {trace_id=\"aa\"} 1\n",
        ] {
            let text = format!("# TYPE oef_h histogram\noef_h_bucket{{le=\"+Inf\"}} 1\n{bad}");
            assert!(parse(&text).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn malformed_exemplars_are_rejected() {
        let header = "# TYPE oef_h histogram\n";
        let tail = "oef_h_sum 1\noef_h_count 1\n";
        for bad in [
            // No label block.
            "oef_h_bucket{le=\"+Inf\"} 1 # 0.5\n",
            // Empty label set.
            "oef_h_bucket{le=\"+Inf\"} 1 # {} 0.5\n",
            // Missing value.
            "oef_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"aa\"}\n",
            // Unparsable timestamp.
            "oef_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"aa\"} 0.5 soon\n",
            // Trailing junk after the timestamp.
            "oef_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"aa\"} 0.5 1700000000 x\n",
        ] {
            let text = format!("{header}{bad}{tail}");
            assert!(parse(&text).is_err(), "should reject: {bad:?}");
        }
        // A label value containing " # " must not be mistaken for an
        // exemplar separator.
        let text = "# TYPE oef_g gauge\noef_g{note=\"a # b\"} 1\n";
        let exposition = parse(text).expect("hash inside a quoted label value");
        assert_eq!(exposition.value("oef_g", &[("note", "a # b")]), Some(1.0));
    }

    #[test]
    fn duplicate_series_are_rejected() {
        let text = "# TYPE oef_x gauge\noef_x{a=\"1\"} 1\noef_x{a=\"1\"} 2\n";
        assert!(parse(text).is_err());
        // Same name, different labels is fine.
        let text = "# TYPE oef_x gauge\noef_x{a=\"1\"} 1\noef_x{a=\"2\"} 2\n";
        assert!(parse(text).is_ok());
    }

    #[test]
    fn negative_counters_are_rejected() {
        assert!(parse("# TYPE oef_c counter\noef_c -1\n").is_err());
        assert!(parse("# TYPE oef_c counter\noef_c NaN\n").is_err());
        assert!(parse("# TYPE oef_g gauge\noef_g -1\n").is_ok());
    }

    #[test]
    fn histogram_invariants_are_enforced() {
        // Missing +Inf bucket.
        let text = "# TYPE oef_h histogram\n\
                    oef_h_bucket{le=\"1\"} 1\noef_h_sum 0.5\noef_h_count 1\n";
        assert!(parse(text).unwrap_err().message.contains("+Inf"));
        // Non-cumulative buckets.
        let text = "# TYPE oef_h histogram\n\
                    oef_h_bucket{le=\"1\"} 3\noef_h_bucket{le=\"2\"} 2\n\
                    oef_h_bucket{le=\"+Inf\"} 3\noef_h_sum 1\noef_h_count 3\n";
        assert!(parse(text).unwrap_err().message.contains("not cumulative"));
        // Count disagrees with +Inf.
        let text = "# TYPE oef_h histogram\n\
                    oef_h_bucket{le=\"+Inf\"} 3\noef_h_sum 1\noef_h_count 4\n";
        assert!(parse(text).unwrap_err().message.contains("disagrees"));
        // Missing _sum.
        let text = "# TYPE oef_h histogram\n\
                    oef_h_bucket{le=\"+Inf\"} 1\noef_h_count 1\n";
        assert!(parse(text).unwrap_err().message.contains("_sum"));
        // A well-formed histogram with two label groups passes.
        let text = "# TYPE oef_h histogram\n\
                    oef_h_bucket{shard=\"0\",le=\"1\"} 1\n\
                    oef_h_bucket{shard=\"0\",le=\"+Inf\"} 2\n\
                    oef_h_sum{shard=\"0\"} 3.5\noef_h_count{shard=\"0\"} 2\n\
                    oef_h_bucket{shard=\"1\",le=\"1\"} 0\n\
                    oef_h_bucket{shard=\"1\",le=\"+Inf\"} 0\n\
                    oef_h_sum{shard=\"1\"} 0\noef_h_count{shard=\"1\"} 0\n";
        let exposition = parse(text).expect("valid histogram");
        assert_eq!(exposition.families.len(), 1);
        assert_eq!(
            exposition.value("oef_h_bucket", &[("shard", "0"), ("le", "+Inf")]),
            Some(2.0)
        );
    }
}
