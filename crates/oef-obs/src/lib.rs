//! # oef-obs — Prometheus-style observability for the scheduling middleware
//!
//! The daemon's metrics were JSON-over-ctl only; this crate gives every
//! long-running core a scrapeable face without adding a single external
//! dependency (the same offline discipline as `crates/shims/`):
//!
//! * [`Registry`] + [`Counter`] / [`Gauge`] / [`Histogram`] /
//!   [`GaugeFamily`] — a lock-cheap metric registry.  Handles are Arc-backed
//!   atomics the worker thread bumps; the only mutex guards registration and
//!   scrape-time rendering, so `/metrics` never blocks the command hot path.
//! * The **text exposition encoder** ([`Registry::render`]) — Prometheus
//!   text format v0.0.4: `# HELP`/`# TYPE` lines, escaped label values,
//!   histogram `_bucket`/`_sum`/`_count` triplets with a `+Inf` bucket.
//! * A **strict exposition parser** ([`parse`]) — the in-repo `promtool`
//!   stand-in that tests, `service_soak` and the CI smoke step run against
//!   every scrape (rejects malformed lines, non-cumulative buckets, missing
//!   `+Inf`, duplicate series, negative counters).
//! * [`MetricsServer`] — a minimal hand-rolled HTTP/1.1 GET responder over
//!   std-TCP serving `/metrics` and `/healthz` on its own listener
//!   (`oef-serviced --metrics-addr`).
//!
//! ```
//! use oef_obs::{MetricsServer, Registry, DEFAULT_LATENCY_BUCKETS};
//!
//! let registry = Registry::new();
//! let solves = registry.histogram(
//!     "oef_solve_duration_seconds",
//!     "LP solve wall-clock time per round.",
//!     &[("shard", "0")],
//!     DEFAULT_LATENCY_BUCKETS,
//! );
//! solves.observe(0.012);
//!
//! let text = registry.render();
//! let exposition = oef_obs::parse(&text).unwrap();
//! assert_eq!(
//!     exposition.value("oef_solve_duration_seconds_count", &[("shard", "0")]),
//!     Some(1.0)
//! );
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod parse;
mod registry;

pub use http::{JsonSource, MetricsServer};
pub use parse::{parse, Exemplar, Exposition, MetricFamily, MetricKind, ParseError, Sample};
pub use registry::{
    escape_help, escape_label_value, fmt_value, AgeGauge, Counter, CounterFamily, Gauge,
    GaugeFamily, Histogram, Labels, Registry, DEFAULT_LATENCY_BUCKETS,
};
