//! Minimal hand-rolled HTTP/1.1 responder for `/metrics`, `/healthz` and
//! `/traces`.
//!
//! Same no-external-crates discipline as `crates/shims/`: a nonblocking
//! std-TCP accept loop (the `Server` idiom from `oef-service`), one short
//! handler thread per connection, every response `Connection: close`.  The
//! listener lives entirely outside the daemon's command path — a scrape
//! renders a [`Registry`] snapshot from atomics, `/traces` reads the
//! slow-trace ring (touched only by sampled commands), and `/healthz`
//! assembles its JSON body from a handful of registry reads; none of them
//! takes a lock the scheduling worker holds.

use crate::registry::{fmt_value, Registry};
use oef_trace::TraceRing;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-connection read timeout: a stalled scraper must not pin a handler
/// thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Upper bound on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A caller-provided JSON body generator, mounted on its own `GET` path by
/// [`MetricsServer::spawn_with_sources`] (e.g. the daemon's `/attrib` cost
/// explainer).  Called per request on the handler thread — it must not take
/// locks the scheduling worker holds for long.
pub type JsonSource = Arc<dyn Fn() -> String + Send + Sync>;

/// A running metrics endpoint serving `GET /metrics`, `GET /healthz` and —
/// when a trace ring is attached — `GET /traces`.
pub struct MetricsServer {
    addr: SocketAddr,
    handle: JoinHandle<()>,
    shutdown: Arc<AtomicBool>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts serving
    /// scrapes of `registry`.  `/traces` answers 404; use
    /// [`Self::spawn_with_traces`] to attach a slow-trace ring.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn spawn(registry: Registry, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::spawn_with_traces(registry, addr, None)
    }

    /// Like [`Self::spawn`], but also serves the slow-trace ring as
    /// `GET /traces` (JSON: the top-K slowest plus most recent sampled
    /// traces).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn spawn_with_traces(
        registry: Registry,
        addr: impl ToSocketAddrs,
        traces: Option<TraceRing>,
    ) -> std::io::Result<Self> {
        Self::spawn_with_sources(registry, addr, traces, Vec::new())
    }

    /// Like [`Self::spawn_with_traces`], additionally mounting each
    /// `(path, source)` pair as a `GET <path>` JSON endpoint (paths must
    /// start with `/`; the built-in routes win on collision).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn spawn_with_sources(
        registry: Registry,
        addr: impl ToSocketAddrs,
        traces: Option<TraceRing>,
        sources: Vec<(String, JsonSource)>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                accept_loop(&listener, &registry, traces.as_ref(), &sources, &shutdown)
            })
        };
        Ok(Self {
            addr: local,
            handle,
            shutdown,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and waits for it to exit.  In-flight scrape
    /// handlers are detached threads and finish (or time out) on their own.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    registry: &Registry,
    traces: Option<&TraceRing>,
    sources: &[(String, JsonSource)],
    shutdown: &Arc<AtomicBool>,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let registry = registry.clone();
                let traces = traces.cloned();
                let sources = sources.to_vec();
                std::thread::spawn(move || {
                    // A dead scraper is not a daemon error.
                    let _ = serve_connection(stream, &registry, traces.as_ref(), &sources);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    registry: &Registry,
    traces: Option<&TraceRing>,
    sources: &[(String, JsonSource)],
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let head = read_request_head(&mut stream)?;
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Ignore any query string: `/metrics?x=1` still scrapes.
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                // The Prometheus text exposition content type.
                "text/plain; version=0.0.4; charset=utf-8",
                registry.render(),
            ),
            "/healthz" => ("200 OK", "application/json", healthz_json(registry)),
            "/traces" => match traces {
                Some(ring) => ("200 OK", "application/json", ring.to_json()),
                None => (
                    "404 Not Found",
                    "text/plain",
                    "tracing not enabled\n".to_string(),
                ),
            },
            path => match sources.iter().find(|(mount, _)| mount == path) {
                Some((_, source)) => ("200 OK", "application/json", source()),
                None => ("404 Not Found", "text/plain", "not found\n".to_string()),
            },
        }
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// The `/healthz` JSON body: liveness plus the handful of freshness signals
/// an external prober needs without paying for a full `/metrics` scrape.
/// Fields whose backing series is not registered (no shards, no journal)
/// render as `null`.
fn healthz_json(registry: &Registry) -> String {
    // One value per family; where a family has per-shard partitions, take
    // the *max* (for ages, the stalest shard is the honest answer; uptime
    // and seq are daemon-wide anyway).
    let max_value = |name: &str| {
        registry
            .values(name)
            .into_iter()
            .map(|(_, v)| v)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    };
    let field = |v: Option<f64>| v.map_or("null".to_string(), fmt_value);
    format!(
        "{{\"status\":\"ok\",\"uptime_secs\":{},\"shards\":{},\"journal_seq\":{},\"last_solve_age_secs\":{}}}\n",
        field(max_value("oef_uptime_seconds")),
        field(max_value("oef_shards")),
        field(max_value("oef_journal_seq")),
        field(max_value("oef_fairness_sample_age_seconds")),
    )
}

/// Reads until the blank line ending the request head (we never read a
/// body — all supported requests are GETs).
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > MAX_REQUEST_BYTES {
            return Err(std::io::Error::other("request head too large"));
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// One blocking HTTP GET against the server; returns (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a head/body split");
        let status = head.lines().next().expect("status line").to_string();
        (status, body.to_string())
    }

    #[test]
    fn serves_metrics_healthz_and_errors() {
        let registry = Registry::new();
        let counter = registry.counter("oef_http_test_total", "Test.", &[]);
        counter.add(5);
        let server = MetricsServer::spawn(registry, "127.0.0.1:0").expect("spawn");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("oef_http_test_total 5\n"));
        crate::parse(&body).expect("exposition must parse strictly");

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        // No uptime/shards/journal series registered in this test registry.
        assert!(body.contains("\"uptime_secs\":null"), "{body}");
        assert!(body.contains("\"journal_seq\":null"), "{body}");

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        // Without an attached ring, /traces is absent.
        let (status, _) = get(addr, "/traces");
        assert!(status.contains("404"), "{status}");

        // Non-GET methods are refused.
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .expect("write");
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).expect("status");
        assert!(status.contains("405"), "{status}");

        server.stop();
    }

    #[test]
    fn healthz_reads_registered_signals() {
        let registry = Registry::new();
        registry
            .gauge("oef_uptime_seconds", "Uptime.", &[])
            .set(42.5);
        registry.gauge("oef_shards", "Shards.", &[]).set(4.0);
        registry.gauge("oef_journal_seq", "Seq.", &[]).set(17.0);
        registry
            .age_gauge("oef_fairness_sample_age_seconds", "Age.", &[("shard", "0")])
            .touch();
        let server = MetricsServer::spawn(registry, "127.0.0.1:0").expect("spawn");
        let (status, body) = get(server.local_addr(), "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"uptime_secs\":42.5"), "{body}");
        assert!(body.contains("\"shards\":4"), "{body}");
        assert!(body.contains("\"journal_seq\":17"), "{body}");
        assert!(!body.contains("\"last_solve_age_secs\":null"), "{body}");
        server.stop();
    }

    #[test]
    fn traces_endpoint_serves_the_ring() {
        use oef_trace::Tracer;
        let tracer = Tracer::new(1);
        tracer.begin(None, "Tick", Some(1_000)).expect("sampled");
        let pending = tracer.take().unwrap();
        tracer.finish(pending, None);
        let server = MetricsServer::spawn_with_traces(
            Registry::new(),
            "127.0.0.1:0",
            Some(tracer.ring().clone()),
        )
        .expect("spawn");
        let (status, body) = get(server.local_addr(), "/traces");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"pushed\":1"), "{body}");
        assert!(body.contains("\"root\":\"Tick\""), "{body}");
        assert!(body.contains("\"queue_wait\""), "{body}");
        server.stop();
    }

    #[test]
    fn mounted_json_sources_are_served() {
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let source: JsonSource = {
            let counter = Arc::clone(&counter);
            Arc::new(move || {
                format!(
                    "{{\"calls\":{}}}\n",
                    counter.fetch_add(1, Ordering::SeqCst) + 1
                )
            })
        };
        let server = MetricsServer::spawn_with_sources(
            Registry::new(),
            "127.0.0.1:0",
            None,
            vec![("/attrib".to_string(), source)],
        )
        .expect("spawn");
        let addr = server.local_addr();
        let (status, body) = get(addr, "/attrib");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"calls\":1"), "{body}");
        // The source is called per request, not snapshotted at spawn.
        let (_, body) = get(addr, "/attrib");
        assert!(body.contains("\"calls\":2"), "{body}");
        let (status, _) = get(addr, "/other");
        assert!(status.contains("404"), "{status}");
        server.stop();
    }

    #[test]
    fn scrapes_are_consistent_under_concurrent_observation() {
        let registry = Registry::new();
        let hist = registry.histogram("oef_busy_seconds", "Busy.", &[], &[0.001, 0.01, 0.1]);
        let server = MetricsServer::spawn(registry, "127.0.0.1:0").expect("spawn");
        let addr = server.local_addr();

        let stop = Arc::new(AtomicBool::new(false));
        let observer = {
            let stop = Arc::clone(&stop);
            let hist = hist.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    hist.observe(0.005);
                    n += 1;
                }
                n
            })
        };
        // Every scrape taken mid-storm must still satisfy the histogram
        // invariants the strict parser enforces.
        for _ in 0..20 {
            let (status, body) = get(addr, "/metrics");
            assert!(status.contains("200"), "{status}");
            crate::parse(&body).expect("mid-storm scrape must stay well-formed");
        }
        stop.store(true, Ordering::SeqCst);
        let observed = observer.join().expect("observer thread");
        assert!(observed > 0);
        let (_, body) = get(addr, "/metrics");
        let exposition = crate::parse(&body).expect("final scrape");
        assert_eq!(
            exposition.value("oef_busy_seconds_count", &[]),
            Some(observed as f64)
        );
        server.stop();
    }
}
