//! # OEF — Optimal Resource Efficiency with Fairness in Heterogeneous GPU Clusters
//!
//! This is the facade crate of the OEF workspace, a from-scratch Rust reproduction of
//! the Middleware '24 paper *"Optimal Resource Efficiency with Fairness in
//! Heterogeneous GPU Clusters"* by Mo, Xu and Lau.
//!
//! The workspace is organised as a set of focused crates, all re-exported here:
//!
//! * [`lp`] — a two-phase simplex linear-programming solver (the substrate that
//!   replaces the paper's cvxpy/ECOS dependency).
//! * [`core`] — the OEF allocation framework itself: non-cooperative OEF
//!   (strategy-proof), cooperative OEF (envy-free + sharing-incentive), weighted OEF
//!   and multi-job-type support, plus fairness-property checkers.
//! * [`schedulers`] — the baselines the paper compares against: Max-Min,
//!   Gandiva_fair, Gavel and pure efficiency maximisation.
//! * [`cluster`] — the cluster model: GPU types, hosts, jobs, tenants, the rounding
//!   placer, and the network-contention / straggler models.
//! * [`workloads`] — DL model speedup profiles and a Philly-like trace generator.
//! * [`sim`] — a round-based discrete-event simulator that drives any scheduler over
//!   a trace and collects throughput / JCT / straggler metrics.
//! * [`service`] — the online middleware face: a multi-tenant scheduling daemon with
//!   tenant lifecycle, snapshot/restore and a line-delimited JSON wire protocol over
//!   TCP (`oef-serviced` / `oef-servicectl`).
//! * [`shard`] — sharded cluster federation: a coordinator routing that same wire
//!   protocol across N scheduler shards with shard-aware handles, parallel per-shard
//!   solves, handle forwarding across migrations and federated (v5) snapshots.
//! * [`rebalance`] — live cross-shard tenant migration and the online rebalancer
//!   that keeps long-lived federations balanced as tenants churn unevenly.
//! * [`journal`] — the write-ahead command journal behind `oef-serviced
//!   --journal-dir`: checksummed per-lane segment files with group-commit fsync
//!   batching, crash-atomic snapshot writes, torn-tail repair and deterministic
//!   replay (plus the fault-injection hooks the crash-recovery tests script).
//! * [`obs`] — observability: a lock-cheap metric registry (counters, gauges,
//!   fixed-bucket histograms, partitioned gauge families), a Prometheus text
//!   exposition renderer with a strict in-repo parser, and the std-TCP
//!   `/metrics` + `/healthz` listener behind `oef-serviced --metrics-addr`.
//! * [`trace`] — end-to-end command tracing behind `oef-serviced
//!   --trace-sample N`: wire-propagated trace contexts, a thread-local span
//!   recorder, the bounded slow-trace ring served as `GET /traces`,
//!   histogram exemplars, and the structured JSON log writer.
//!
//! # Quickstart
//!
//! ```
//! use oef::core::{ClusterSpec, SpeedupMatrix, CooperativeOef, AllocationPolicy};
//!
//! // A cluster with one slow GPU and one fast GPU (per Fig. 1 of the paper) ...
//! let cluster = ClusterSpec::homogeneous_counts(&["rtx3070", "rtx3090"], &[1.0, 1.0]).unwrap();
//! // ... shared by a VGG user (1.39x speedup) and an LSTM user (2.15x speedup).
//! let speedups = SpeedupMatrix::from_rows(vec![
//!     vec![1.0, 1.39],
//!     vec![1.0, 2.15],
//! ]).unwrap();
//!
//! let allocation = CooperativeOef::default().allocate(&cluster, &speedups).unwrap();
//! let eff = allocation.user_efficiencies(&speedups);
//! // The LSTM user is steered towards the fast GPU without making the VGG user envious.
//! assert!(eff[1] > 1.8 && eff[0] > 1.15);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oef_cluster as cluster;
pub use oef_core as core;
pub use oef_journal as journal;
pub use oef_lp as lp;
pub use oef_obs as obs;
pub use oef_rebalance as rebalance;
pub use oef_schedulers as schedulers;
pub use oef_service as service;
pub use oef_shard as shard;
pub use oef_sim as sim;
pub use oef_trace as trace;
pub use oef_workloads as workloads;

/// Convenience prelude re-exporting the most commonly used types across the workspace.
pub mod prelude {
    pub use oef_cluster::{ClusterState, GpuType, Host, Job, Tenant};
    pub use oef_core::{
        Allocation, AllocationPolicy, ClusterSpec, CooperativeOef, NonCooperativeOef,
        SpeedupMatrix, SpeedupVector, WeightedOef,
    };
    pub use oef_schedulers::{GandivaFair, Gavel, MaxEfficiency, MaxMin, Scheduler};
    pub use oef_service::{SchedulerService, Server, ServiceClient, ServiceConfig};
    pub use oef_sim::{Scenario, SimulationEngine, SimulationReport};
    pub use oef_workloads::{ChurnTrace, DlModel, PhillyTraceGenerator, Trace};
}
