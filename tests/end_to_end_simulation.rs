//! Cross-crate integration tests: trace generation → scenario → simulation → metrics,
//! for every scheduler, exercising the whole stack through the facade crate.

use oef::cluster::ClusterTopology;
use oef::core::{AllocationPolicy, CooperativeOef, NonCooperativeOef};
use oef::schedulers::{all_policies, GandivaFair, Gavel, MaxMin};
use oef::sim::{Scenario, SimulationConfig, SimulationEngine};
use oef::workloads::{ModelCatalog, PhillyTraceGenerator, TraceConfig};

fn small_trace_config() -> TraceConfig {
    TraceConfig {
        num_tenants: 6,
        jobs_per_tenant: 3,
        duration_secs: 4.0 * 3600.0,
        contention: 0.8,
        cluster_devices: 24,
        speedup_jitter: 0.05,
        multi_model_fraction: 0.2,
        seed: 17,
    }
}

#[test]
fn every_policy_survives_a_trace_replay() {
    let trace = PhillyTraceGenerator::new(small_trace_config()).generate();
    for policy in all_policies() {
        let state = Scenario::from_trace(ClusterTopology::paper_cluster(), &trace);
        let config = SimulationConfig {
            round_secs: 600.0,
            ..Default::default()
        };
        let mut engine = SimulationEngine::new(state, config);
        let report = engine
            .run(policy.as_ref(), 12)
            .expect("simulation must not fail");
        assert_eq!(report.rounds.len(), 12);
        assert!(
            report.avg_total_actual() > 0.0,
            "{} produced zero throughput",
            policy.name()
        );
        // Throughput can never exceed what the whole cluster could deliver if every
        // device ran the fastest profile in the catalogue.
        let max_speedup = ModelCatalog::paper_catalog()
            .models()
            .iter()
            .flat_map(|m| m.base_speedup.iter().copied())
            .fold(0.0f64, f64::max);
        assert!(report.avg_total_actual() <= 24.0 * max_speedup * 1.1);
    }
}

#[test]
fn oef_beats_baselines_on_throughput_in_cooperative_setting() {
    // The Fig. 8 shape at miniature scale: cooperative OEF's estimated throughput is at
    // least as high as Gandiva_fair's and Gavel's on a skewed tenant mix.
    let catalog = ModelCatalog::paper_catalog();
    let mut scenario = Scenario::on_paper_cluster();
    for (i, name) in [
        "vgg16",
        "lstm",
        "transformer",
        "rnn",
        "densenet121",
        "resnet50",
    ]
    .iter()
    .enumerate()
    {
        let speedup = catalog.by_name(name).unwrap().speedup().unwrap();
        scenario = scenario.with_tenant(format!("tenant-{i}"), speedup, 3, 2, 1e12);
    }

    let mut totals = Vec::new();
    let oef = CooperativeOef::default();
    let gandiva = GandivaFair::default();
    let gavel = Gavel::default();
    let policies: Vec<&dyn oef::core::AllocationPolicy> = vec![&oef, &gandiva, &gavel];
    for policy in policies {
        let mut engine = SimulationEngine::new(scenario.build(), SimulationConfig::default());
        let report = engine.run(policy, 12).unwrap();
        totals.push((policy.name().to_string(), report.avg_total_estimated()));
    }
    let oef_total = totals[0].1;
    for (name, total) in &totals[1..] {
        assert!(
            oef_total >= total - 1e-6,
            "cooperative OEF ({oef_total}) should not lose to {name} ({total})"
        );
    }
}

#[test]
fn strategy_proofness_shows_up_in_the_simulator() {
    // Fig. 4(b) shape: under non-cooperative OEF, a tenant that inflates its reported
    // speedups ends up with *less* true throughput than when reporting honestly.
    let catalog = ModelCatalog::paper_catalog();
    let build = || {
        let mut scenario = Scenario::on_paper_cluster();
        for (i, name) in ["vgg16", "lstm", "resnet50", "transformer"]
            .iter()
            .enumerate()
        {
            let speedup = catalog.by_name(name).unwrap().speedup().unwrap();
            scenario = scenario.with_tenant(format!("tenant-{i}"), speedup, 3, 2, 1e12);
        }
        scenario.build()
    };

    let policy = NonCooperativeOef::default();

    let mut honest_engine = SimulationEngine::new(build(), SimulationConfig::default());
    let honest = honest_engine.run(&policy, 10).unwrap();

    let mut cheating_engine = SimulationEngine::new(build(), SimulationConfig::default());
    cheating_engine
        .state_mut()
        .tenant_mut(0)
        .cheat_with_factor(1.6);
    let cheating = cheating_engine.run(&policy, 10).unwrap();

    let honest_tput = honest.avg_tenant_estimated(0);
    let cheating_tput = cheating.avg_tenant_estimated(0);
    assert!(
        cheating_tput <= honest_tput + 1e-6,
        "cheating should not pay under non-cooperative OEF: {honest_tput} -> {cheating_tput}"
    );
}

#[test]
fn departures_rebalance_throughput() {
    // Fig. 4(a): when a tenant leaves, the remaining tenants' equalised throughput
    // increases (they split the freed resources).
    let catalog = ModelCatalog::paper_catalog();
    let mut scenario = Scenario::on_paper_cluster();
    for (i, name) in ["vgg16", "lstm", "resnet50", "transformer"]
        .iter()
        .enumerate()
    {
        let speedup = catalog.by_name(name).unwrap().speedup().unwrap();
        scenario = scenario.with_tenant(format!("tenant-{i}"), speedup, 3, 2, 1e12);
    }
    let mut engine = SimulationEngine::new(scenario.build(), SimulationConfig::default());
    let policy = NonCooperativeOef::default();
    for _ in 0..4 {
        engine.run_round(&policy).unwrap();
    }
    let before = engine.report(policy.name()).avg_tenant_estimated(0);
    engine.state_mut().tenant_mut(3).departed = true;
    for _ in 0..4 {
        engine.run_round(&policy).unwrap();
    }
    let report = engine.report(policy.name());
    let after_series = report.tenant_timeseries(0);
    let after: f64 = after_series
        .iter()
        .rev()
        .take(4)
        .map(|(_, v)| *v)
        .sum::<f64>()
        / 4.0;
    // Estimated throughput comparison needs the estimated series; use averages instead:
    // the last-4-round actual average should exceed the first-4-round estimated average
    // is too placement-noisy, so compare estimated directly.
    let est_before = before;
    let est_after: f64 = {
        let rounds = &report.rounds[4..];
        let vals: Vec<f64> = rounds
            .iter()
            .filter_map(|r| r.tenant(0).map(|t| t.estimated_throughput))
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    assert!(
        est_after > est_before * 1.05,
        "tenant 0 should speed up after a departure: {est_before} -> {est_after}"
    );
    let _ = after;
}

#[test]
fn max_min_is_the_floor_for_every_tenant_under_coop_oef() {
    // Sharing incentive at system level: each tenant's estimated throughput under
    // cooperative OEF is at least its Max-Min throughput.
    let catalog = ModelCatalog::paper_catalog();
    let mut scenario = Scenario::on_paper_cluster();
    for (i, name) in ["vgg16", "lstm", "rnn", "transformer"].iter().enumerate() {
        let speedup = catalog.by_name(name).unwrap().speedup().unwrap();
        scenario = scenario.with_tenant(format!("tenant-{i}"), speedup, 2, 2, 1e12);
    }

    let mut oef_engine = SimulationEngine::new(scenario.build(), SimulationConfig::default());
    let oef_report = oef_engine.run(&CooperativeOef::default(), 8).unwrap();
    let mut mm_engine = SimulationEngine::new(scenario.build(), SimulationConfig::default());
    let mm_report = mm_engine.run(&MaxMin::default(), 8).unwrap();

    for tenant in 0..4 {
        let oef_tput = oef_report.avg_tenant_estimated(tenant);
        let mm_tput = mm_report.avg_tenant_estimated(tenant);
        assert!(
            oef_tput >= mm_tput - 1e-6,
            "tenant {tenant}: OEF {oef_tput} below Max-Min {mm_tput}"
        );
    }
}
