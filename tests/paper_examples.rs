//! Integration tests replaying the worked examples of the paper's text end-to-end
//! through the public facade crate (`oef`).

use oef::core::{
    fairness, AllocationPolicy, ClusterSpec, CooperativeOef, NonCooperativeOef, SpeedupMatrix,
};
use oef::schedulers::{GandivaFair, Gavel, MaxEfficiency, MaxMin};

fn two_gpu_cluster() -> ClusterSpec {
    ClusterSpec::homogeneous_counts(&["gpu1", "gpu2"], &[1.0, 1.0]).unwrap()
}

fn expression_1_matrix() -> SpeedupMatrix {
    SpeedupMatrix::from_rows(vec![vec![1.0, 2.0], vec![1.0, 3.0], vec![1.0, 4.0]]).unwrap()
}

#[test]
fn section_24_gandiva_fair_matches_expression_1() {
    // Gandiva_fair's trading yields roughly X = [1 0.09; 0 0.47; 0 0.44] with
    // efficiencies <1.18, 1.41, 1.76>.
    let allocation = GandivaFair::default()
        .allocate(&two_gpu_cluster(), &expression_1_matrix())
        .unwrap();
    let eff = allocation.user_efficiencies(&expression_1_matrix());
    assert!((eff[0] - 1.18).abs() < 0.02);
    assert!((eff[1] - 1.41).abs() < 0.02);
    assert!((eff[2] - 1.76).abs() < 0.03);
}

#[test]
fn section_24_gavel_matches_expression_3_shape() {
    // Gavel equalises throughput-to-fair-share ratios (~1.08-1.10 for all users) and
    // ends below Gandiva_fair in total efficiency.
    let w = expression_1_matrix();
    let cluster = two_gpu_cluster();
    let gavel = Gavel::default().allocate(&cluster, &w).unwrap();
    let gandiva = GandivaFair::default().allocate(&cluster, &w).unwrap();
    let coop = CooperativeOef::default().allocate(&cluster, &w).unwrap();
    let fair: Vec<f64> = (0..3)
        .map(|l| w.user(l).dot(&cluster.equal_share(3)))
        .collect();
    let ratios: Vec<f64> = (0..3)
        .map(|l| gavel.user_efficiency(l, &w) / fair[l])
        .collect();
    for r in &ratios {
        assert!(
            (r - ratios[0]).abs() < 0.05,
            "Gavel ratios not equalised: {ratios:?}"
        );
        assert!(
            *r >= 1.0 - 1e-6,
            "Gavel is sharing-incentive by construction"
        );
    }
    // Both heterogeneity-aware baselines land within a few percent of each other
    // (4.3-4.45 in total efficiency here) and both stay clearly below the envy-free
    // optimum of 4.5 that cooperative OEF attains (Expression (2) vs (3)).
    assert!((gavel.total_efficiency(&w) - gandiva.total_efficiency(&w)).abs() < 0.15);
    assert!(gavel.total_efficiency(&w) < coop.total_efficiency(&w) - 0.05);
    assert!(gandiva.total_efficiency(&w) < coop.total_efficiency(&w) - 0.05);
}

#[test]
fn section_31_expression_2_is_the_cooperative_oef_outcome() {
    // The envy-free, sharing-incentive allocation with optimal efficiency is
    // X* = [1 0; 0 0.5; 0 0.5] with efficiencies <1, 1.5, 2> (total 4.5).
    let w = expression_1_matrix();
    let cluster = two_gpu_cluster();
    let allocation = CooperativeOef::default().allocate(&cluster, &w).unwrap();
    assert!((allocation.total_efficiency(&w) - 4.5).abs() < 1e-6);
    let envy = fairness::check_envy_freeness(&allocation, &w, 1e-6);
    assert!(envy.envy_free);
    let si = fairness::check_sharing_incentive(&allocation, &w, &cluster, 1e-6);
    assert!(si.sharing_incentive);
    let pe = fairness::check_pareto_efficiency(&allocation, &w, &cluster, 1e-4).unwrap();
    assert!(pe.pareto_efficient);
}

#[test]
fn section_311_expression_5_pure_efficiency_is_unfair() {
    // Pure efficiency maximisation gives GPU2 entirely to the user with speedup 4 and
    // starves user 2: neither envy-free nor sharing-incentive.
    let w = expression_1_matrix();
    let cluster = two_gpu_cluster();
    let allocation = MaxEfficiency::default().allocate(&cluster, &w).unwrap();
    assert!(
        (allocation.total_efficiency(&w) - fairness::max_total_efficiency(&cluster, &w)).abs()
            < 1e-9
    );
    assert!(!fairness::check_envy_freeness(&allocation, &w, 1e-9).envy_free);
    assert!(!fairness::check_sharing_incentive(&allocation, &w, &cluster, 1e-9).sharing_incentive);
}

#[test]
fn section_311_expression_6_cooperative_oef_two_users() {
    // Two users with speedups (1,2) and (1,5): the envy-free optimum is
    // X = [1 0.25; 0 0.75] with total efficiency 5.25.
    let cluster = two_gpu_cluster();
    let w = SpeedupMatrix::from_rows(vec![vec![1.0, 2.0], vec![1.0, 5.0]]).unwrap();
    let allocation = CooperativeOef::default().allocate(&cluster, &w).unwrap();
    assert!((allocation.share(0, 0) - 1.0).abs() < 1e-6);
    assert!((allocation.share(0, 1) - 0.25).abs() < 1e-6);
    assert!((allocation.share(1, 1) - 0.75).abs() < 1e-6);
    assert!((allocation.total_efficiency(&w) - 5.25).abs() < 1e-6);
}

#[test]
fn table_1_property_matrix() {
    // Empirical reproduction of Table 1 on the worked example: Gavel (SI only, of the
    // four), Gandiva_fair (PE + SI), OEF (all four plus optimal efficiency).
    let w = expression_1_matrix();
    let cluster = two_gpu_cluster();
    let probes = [1.2, 1.5, 2.0];

    let gavel = fairness::evaluate_policy(&Gavel::default(), &cluster, &w, &probes).unwrap();
    assert!(gavel.sharing.sharing_incentive);
    assert!(!gavel.envy.envy_free || !gavel.strategy.strategy_proof);

    let gandiva =
        fairness::evaluate_policy(&GandivaFair::default(), &cluster, &w, &probes).unwrap();
    assert!(gandiva.sharing.sharing_incentive);
    assert!(!gandiva.envy.envy_free);
    assert!(!gandiva.strategy.strategy_proof);

    let coop =
        fairness::evaluate_policy(&CooperativeOef::default(), &cluster, &w, &probes).unwrap();
    assert!(coop.envy.envy_free);
    assert!(coop.sharing.sharing_incentive);
    assert!(coop.pareto.pareto_efficient);

    let noncoop =
        fairness::evaluate_policy(&NonCooperativeOef::default(), &cluster, &w, &probes).unwrap();
    assert!(noncoop.strategy.strategy_proof);
    assert!(noncoop.pareto.pareto_efficient);

    // Max-Min is fair but wastes heterogeneity: lower efficiency ratio than coop OEF.
    let maxmin = fairness::evaluate_policy(&MaxMin::default(), &cluster, &w, &probes).unwrap();
    assert!(maxmin.efficiency_ratio <= coop.efficiency_ratio + 1e-9);
}

#[test]
fn theorem_52_adjacent_gpu_types_across_policies_and_instances() {
    // OEF allocations only assign adjacent GPU types to each user (Theorem 5.2).
    let cluster =
        ClusterSpec::homogeneous_counts(&["a", "b", "c", "d"], &[3.0, 3.0, 3.0, 3.0]).unwrap();
    let w = SpeedupMatrix::from_rows(vec![
        vec![1.0, 1.1, 1.2, 1.3],
        vec![1.0, 1.4, 1.9, 2.4],
        vec![1.0, 1.2, 1.5, 1.9],
        vec![1.0, 1.8, 2.8, 4.0],
        vec![1.0, 1.05, 1.1, 1.15],
    ])
    .unwrap();
    for policy in [
        &NonCooperativeOef::default() as &dyn AllocationPolicy,
        &CooperativeOef::default(),
    ] {
        let allocation = policy.allocate(&cluster, &w).unwrap();
        assert!(
            allocation.uses_adjacent_types_only(),
            "{} produced a non-adjacent allocation: {allocation:?}",
            policy.name()
        );
        assert!(allocation.is_feasible(&cluster));
    }
}
