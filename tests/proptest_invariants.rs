//! Property-based integration tests over the core OEF invariants, run across random
//! clusters and speedup matrices through the public facade crate.

use oef::core::{
    fairness, AllocationPolicy, ClusterSpec, CooperativeOef, NonCooperativeOef, OefMode,
    SpeedupMatrix, WeightedOef,
};
use oef::schedulers::{GandivaFair, Gavel, MaxEfficiency, MaxMin};
use proptest::prelude::*;

/// A random instance: 2-3 GPU types with small capacities, 2-5 users with increasing
/// speedups across types.
fn instance() -> impl Strategy<Value = (ClusterSpec, SpeedupMatrix)> {
    (2usize..=3, 2usize..=5).prop_flat_map(|(k, n)| {
        let capacities = proptest::collection::vec(1.0f64..6.0, k);
        let growth = proptest::collection::vec(proptest::collection::vec(1.02f64..2.2, k - 1), n);
        (capacities, growth).prop_map(move |(capacities, growth)| {
            let names: Vec<String> = (0..k).map(|j| format!("type{j}")).collect();
            let cluster = ClusterSpec::new(names.into_iter().zip(capacities).collect()).unwrap();
            let rows: Vec<Vec<f64>> = growth
                .into_iter()
                .map(|g| {
                    let mut row = vec![1.0];
                    let mut last = 1.0;
                    for f in g {
                        last *= f;
                        row.push(last);
                    }
                    row
                })
                .collect();
            (cluster, SpeedupMatrix::from_rows(rows).unwrap())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_policy_returns_feasible_allocations((cluster, speedups) in instance()) {
        let noncoop = NonCooperativeOef::default();
        let coop = CooperativeOef::default();
        let maxmin = MaxMin::default();
        let gandiva = GandivaFair::default();
        let gavel = Gavel::default();
        let maxeff = MaxEfficiency::default();
        let policies: Vec<&dyn AllocationPolicy> =
            vec![&noncoop, &coop, &maxmin, &gandiva, &gavel, &maxeff];
        for policy in policies {
            let allocation = policy.allocate(&cluster, &speedups).unwrap();
            prop_assert!(allocation.is_feasible(&cluster), "{} infeasible", policy.name());
            prop_assert_eq!(allocation.num_users(), speedups.num_users());
            for eff in allocation.user_efficiencies(&speedups) {
                prop_assert!(eff >= -1e-9);
            }
        }
    }

    #[test]
    fn noncoop_equalises_throughput_and_is_pareto_efficient((cluster, speedups) in instance()) {
        let allocation = NonCooperativeOef::default().allocate(&cluster, &speedups).unwrap();
        let eff = allocation.user_efficiencies(&speedups);
        for e in &eff {
            prop_assert!((e - eff[0]).abs() < 1e-5, "unequal throughput {eff:?}");
        }
        let pe = fairness::check_pareto_efficiency(&allocation, &speedups, &cluster, 1e-3).unwrap();
        prop_assert!(pe.pareto_efficient, "improvable by {}", pe.improvable_by);
    }

    #[test]
    fn coop_is_envy_free_sharing_incentive_and_adjacent((cluster, speedups) in instance()) {
        let allocation = CooperativeOef::default().allocate(&cluster, &speedups).unwrap();
        let envy = fairness::check_envy_freeness(&allocation, &speedups, 1e-5);
        prop_assert!(envy.envy_free, "max envy {}", envy.max_envy);
        let si = fairness::check_sharing_incentive(&allocation, &speedups, &cluster, 1e-5);
        prop_assert!(si.sharing_incentive, "min SI ratio {}", si.min_ratio);
        // Adjacency (Theorem 5.2) is asserted on non-degenerate instances in
        // tests/paper_examples.rs; random instances can contain speedup ties for which
        // the simplex may return an equally-optimal but non-adjacent vertex.
    }

    #[test]
    fn coop_total_efficiency_dominates_other_fair_policies((cluster, speedups) in instance()) {
        let coop = CooperativeOef::default().allocate(&cluster, &speedups).unwrap();
        let maxmin = MaxMin::default().allocate(&cluster, &speedups).unwrap();
        let gavel = Gavel::default().allocate(&cluster, &speedups).unwrap();
        let coop_total = coop.total_efficiency(&speedups);
        // Max-min's equal split is identical across users, hence envy-free, hence a
        // feasible point of the cooperative program: domination is a theorem.
        prop_assert!(coop_total >= maxmin.total_efficiency(&speedups) - 1e-5);
        // Gavel's equalised-ratio allocation is NOT envy-free in general, so its total
        // can exceed the EF-constrained optimum on some instances (the paper's claim
        // that coop OEF beats Gavel is empirical, over its workloads).  Whenever
        // Gavel's allocation happens to be envy-free it lies inside the cooperative
        // feasible region and domination must hold exactly.
        let gavel_envy = fairness::check_envy_freeness(&gavel, &speedups, 1e-6);
        if gavel_envy.envy_free {
            prop_assert!(coop_total >= gavel.total_efficiency(&speedups) - 1e-4);
        }
        // And it never exceeds the unconstrained optimum.
        prop_assert!(coop_total <= fairness::max_total_efficiency(&cluster, &speedups) + 1e-6);
    }

    #[test]
    fn noncoop_is_strategy_proof_on_random_instances((cluster, speedups) in instance()) {
        let report = fairness::probe_strategy_proofness(
            &NonCooperativeOef::default(),
            &cluster,
            &speedups,
            &[1.15, 1.5],
            1e-6,
        )
        .unwrap();
        prop_assert!(
            report.strategy_proof,
            "profitable lie found: {:?} gain {}",
            report.worst_case,
            report.max_relative_gain
        );
    }

    #[test]
    fn weighted_oef_scales_with_weights((cluster, speedups) in instance(), weight in 2u32..4) {
        // Give the first tenant a higher weight: its throughput relative to an
        // equal-weight run should scale by exactly `weight` under the non-cooperative
        // (equal-throughput-per-virtual-user) mechanism.
        let weighted = WeightedOef::new(OefMode::NonCooperative);
        let n = speedups.num_users();
        let mut weights = vec![1u32; n];
        weights[0] = weight;
        let unweighted = weighted.allocate_weighted(&cluster, &speedups, &vec![1; n]).unwrap();
        let boosted = weighted.allocate_weighted(&cluster, &speedups, &weights).unwrap();
        let base_others: f64 = (1..n).map(|l| unweighted.user_efficiency(l, &speedups)).sum();
        let boosted_others: f64 = (1..n).map(|l| boosted.user_efficiency(l, &speedups)).sum();
        // Tenant 0's throughput relative to the other tenants' grows by the weight.
        if base_others > 1e-9 && boosted_others > 1e-9 {
            let base_ratio = unweighted.user_efficiency(0, &speedups) / (base_others / (n - 1) as f64);
            let boosted_ratio = boosted.user_efficiency(0, &speedups) / (boosted_others / (n - 1) as f64);
            prop_assert!(
                (boosted_ratio - weight as f64 * base_ratio).abs() < 1e-3 * boosted_ratio.max(1.0),
                "weight {weight}: ratio {base_ratio} -> {boosted_ratio}"
            );
        }
    }
}
